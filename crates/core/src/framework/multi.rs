//! Multi-subscriber adaptive estimation: one pass over sample blocks feeds
//! many independent (est, ε) trackers with per-subscriber stopping rules.
//!
//! Each subscriber is a [`Tracker`] (the demand/absorb form of Algorithm
//! 1's loop). The drivers here step all trackers in lockstep rounds: every
//! round collects the active subscribers' [`Demand`]s, executes them as
//! **one** parallel pass, and feeds each block back. A subscriber whose ε
//! target is met detaches while the pass keeps serving stricter ones.
//! Because a demand is a pure coordinate into the counter-based RNG
//! streams, each subscriber sees exactly the draws it would have seen
//! running alone under the same master seed — outcomes are bit-identical
//! to per-subscriber [`super::adaptive::estimate_risks`] runs, for every
//! thread count and every batch composition.
//!
//! Three executors back the drivers:
//!
//! * [`estimate_risks_multi`] / [`estimate_weighted_risks_multi`] — fused
//!   scheduling: all subscribers' blocks fan out over one rayon pass, but
//!   each block is drawn through its own problem's sampler (required when
//!   draws depend on the hypothesis set, as for personalized-ISP
//!   betweenness and harmonic closeness).
//! * [`estimate_risks_shared`] — genuine draw sharing for [`SharedDraw`]
//!   problems: overlapping chunk demands are unioned, each chunk's
//!   artifacts are drawn **once**, and every demanding subscriber scores
//!   them. Serving `s` subscribers costs one draw pass plus `s` cheap
//!   score scans instead of `s` draw passes.

use std::collections::BTreeMap;
use std::ops::Range;

use rayon::prelude::*;
use saphyra_stats::{hoeffding_samples, stream, vc_sample_bound};

use super::adaptive::{AdaptiveConfig, AdaptiveOutcome};
use super::batch::LossAcc;
use super::problem::{HrProblem, SharedDraw};
use super::tracker::{pilot_budget, BlockAcc, Demand, Tracker};
use super::weighted::WeightedHrProblem;

/// Steps trackers in lockstep rounds against a block executor until every
/// subscriber detaches.
fn drive<T: BlockAcc>(
    mut trackers: Vec<Tracker<T>>,
    exec: impl Fn(&[(usize, Demand)]) -> Vec<Vec<T>>,
) -> Vec<AdaptiveOutcome> {
    loop {
        let reqs: Vec<(usize, Demand)> = trackers
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.demand().map(|d| (i, d)))
            .collect();
        if reqs.is_empty() {
            break;
        }
        let blocks = exec(&reqs);
        debug_assert_eq!(blocks.len(), reqs.len());
        for (&(sub, _), block) in reqs.iter().zip(&blocks) {
            trackers[sub].absorb(block);
        }
    }
    trackers.into_iter().map(Tracker::finish).collect()
}

/// Executes hit-count demands as one rayon pass. Each demand's chunk range
/// is split into groups exactly like the solo path; integer counts merge
/// exactly under any grouping, so per-subscriber totals are bit-identical
/// to solo runs.
fn run_hit_blocks<'a, P: HrProblem + ?Sized>(
    problems: &[&'a P],
    master: u64,
    reqs: &[(usize, Demand)],
) -> Vec<Vec<u64>> {
    let ks: Vec<usize> = problems.iter().map(|p| p.num_hypotheses()).collect();
    // unit = (request index, chunk sub-range)
    let mut units: Vec<(usize, Range<usize>)> = Vec::new();
    for (ri, &(_, d)) in reqs.iter().enumerate() {
        if d.count == 0 {
            continue;
        }
        let chunks = stream::num_chunks(d.count, stream::CHUNK);
        for r in stream::group_bounds(chunks, stream::int_groups()) {
            units.push((ri, r));
        }
    }
    let partials: Vec<Vec<u64>> = (0..units.len())
        .into_par_iter()
        .map_init(
            || {
                let samplers: Vec<Option<Box<dyn super::problem::HrSampler + 'a>>> =
                    problems.iter().map(|_| None).collect();
                (samplers, Vec::<u32>::new())
            },
            |(samplers, hits), u| {
                let (ri, range) = &units[u as usize];
                let (sub, d) = reqs[*ri];
                let mut counts = vec![0u64; ks[sub]];
                let sampler = samplers[sub].get_or_insert_with(|| problems[sub].sampler());
                for c in range.clone() {
                    let mut rng = stream::chunk_rng(master, d.stream, d.first_chunk + c as u64);
                    let len = stream::chunk_len(d.count, stream::CHUNK, c);
                    for _ in 0..len {
                        hits.clear();
                        sampler.sample_hits_into(&mut rng, hits);
                        for &i in hits.iter() {
                            counts[i as usize] += 1;
                        }
                    }
                }
                counts
            },
        )
        .collect();
    let mut totals: Vec<Vec<u64>> = reqs.iter().map(|&(s, _)| vec![0u64; ks[s]]).collect();
    for ((ri, _), part) in units.iter().zip(partials) {
        for (t, x) in totals[*ri].iter_mut().zip(part) {
            *t += x;
        }
    }
    totals
}

/// Executes weighted-loss demands as one rayon pass. Each demand keeps its
/// own solo grouping ([`stream::f64_groups`] of *its* `k`) and its groups
/// merge left-to-right, so the `f64` association order — and therefore the
/// bits — match a solo [`super::weighted::estimate_weighted_risks`] run.
fn run_loss_blocks<'a, P: WeightedHrProblem + ?Sized>(
    problems: &[&'a P],
    master: u64,
    reqs: &[(usize, Demand)],
) -> Vec<Vec<LossAcc>> {
    let ks: Vec<usize> = problems.iter().map(|p| p.num_hypotheses()).collect();
    let mut units: Vec<(usize, Range<usize>)> = Vec::new();
    for (ri, &(sub, d)) in reqs.iter().enumerate() {
        if d.count == 0 {
            continue;
        }
        let chunks = stream::num_chunks(d.count, stream::CHUNK);
        let groups = stream::f64_groups(ks[sub] * std::mem::size_of::<LossAcc>());
        for r in stream::group_bounds(chunks, groups) {
            units.push((ri, r));
        }
    }
    let partials: Vec<Vec<LossAcc>> = (0..units.len())
        .into_par_iter()
        .map_init(
            || {
                let samplers: Vec<Option<Box<dyn super::weighted::WeightedHrSampler + 'a>>> =
                    problems.iter().map(|_| None).collect();
                (samplers, Vec::<(u32, f64)>::new())
            },
            |(samplers, buf), u| {
                let (ri, range) = &units[u as usize];
                let (sub, d) = reqs[*ri];
                let mut accs = vec![LossAcc::default(); ks[sub]];
                let sampler = samplers[sub].get_or_insert_with(|| problems[sub].sampler());
                for c in range.clone() {
                    let mut rng = stream::chunk_rng(master, d.stream, d.first_chunk + c as u64);
                    let len = stream::chunk_len(d.count, stream::CHUNK, c);
                    for _ in 0..len {
                        buf.clear();
                        sampler.sample_losses_into(&mut rng, buf);
                        for &(i, x) in buf.iter() {
                            accs[i as usize].push(x);
                        }
                    }
                }
                accs
            },
        )
        .collect();
    // Units of one request arrive in group order; merging in unit order is
    // the same left-to-right association the solo path uses.
    let mut totals: Vec<Vec<LossAcc>> = reqs
        .iter()
        .map(|&(s, _)| vec![LossAcc::default(); ks[s]])
        .collect();
    for ((ri, _), part) in units.iter().zip(partials) {
        for (t, p) in totals[*ri].iter_mut().zip(&part) {
            t.add(p);
        }
    }
    totals
}

/// Executes hit-count demands with **shared draws**: the union of demanded
/// `(stream, chunk)` coordinates is drawn once, and every subscriber that
/// demanded a chunk scores its prefix of the chunk's artifacts.
///
/// Correctness leans on the [`SharedDraw`] contract: drawing is
/// target-independent and scoring consumes no RNG, so the first `len`
/// artifacts of a chunk are the same values a solo run would have drawn,
/// regardless of how many extra samples stricter subscribers demanded from
/// the same chunk.
fn run_shared_blocks<P: SharedDraw + ?Sized>(
    problems: &[&P],
    master: u64,
    reqs: &[(usize, Demand)],
) -> Vec<Vec<u64>> {
    let ks: Vec<usize> = problems.iter().map(|p| p.num_hypotheses()).collect();
    // (stream, chunk) → demanding (request index, samples needed).
    let mut by_chunk: BTreeMap<(u64, u64), Vec<(usize, usize)>> = BTreeMap::new();
    for (ri, &(_, d)) in reqs.iter().enumerate() {
        if d.count == 0 {
            continue;
        }
        let chunks = stream::num_chunks(d.count, stream::CHUNK);
        for c in 0..chunks {
            let len = stream::chunk_len(d.count, stream::CHUNK, c);
            by_chunk
                .entry((d.stream, d.first_chunk + c as u64))
                .or_default()
                .push((ri, len));
        }
    }
    // (stream, chunk) paired with its demanders: (request index, samples needed).
    type ChunkUnit = ((u64, u64), Vec<(usize, usize)>);
    let chunk_units: Vec<ChunkUnit> = by_chunk.into_iter().collect();
    let groups = stream::group_bounds(chunk_units.len(), stream::int_groups());
    let partials: Vec<Vec<Vec<u64>>> = (0..groups.len())
        .into_par_iter()
        .map_init(
            || (Vec::<u32>::new(), Vec::<u32>::new()), // (artifact, hits)
            |(buf, hits), gi| {
                let range = &groups[gi as usize];
                let mut counts: Vec<Vec<u64>> =
                    reqs.iter().map(|&(s, _)| vec![0u64; ks[s]]).collect();
                for u in range.clone() {
                    let ((stream_id, chunk), demanders) = &chunk_units[u];
                    let mut rng = stream::chunk_rng(master, *stream_id, *chunk);
                    let max_len = demanders.iter().map(|&(_, l)| l).max().unwrap_or(0);
                    // Any demander's problem can draw — the contract makes
                    // them interchangeable.
                    let drawer = problems[reqs[demanders[0].0].0];
                    for s in 0..max_len {
                        buf.clear();
                        drawer.draw_artifact(&mut rng, buf);
                        for &(ri, len) in demanders.iter() {
                            if s >= len {
                                continue;
                            }
                            hits.clear();
                            problems[reqs[ri].0].score_artifact(buf, hits);
                            for &i in hits.iter() {
                                counts[ri][i as usize] += 1;
                            }
                        }
                    }
                }
                counts
            },
        )
        .collect();
    let mut totals: Vec<Vec<u64>> = reqs.iter().map(|&(s, _)| vec![0u64; ks[s]]).collect();
    for part in partials {
        for (t, p) in totals.iter_mut().zip(part) {
            for (a, b) in t.iter_mut().zip(p) {
                *a += b;
            }
        }
    }
    totals
}

fn hit_trackers<P: HrProblem + ?Sized>(
    problems: &[&P],
    cfgs: &[AdaptiveConfig],
) -> Vec<Tracker<u64>> {
    assert_eq!(problems.len(), cfgs.len(), "one config per subscriber");
    problems
        .iter()
        .zip(cfgs)
        .map(|(p, cfg)| {
            let n0 = pilot_budget(cfg);
            let nmax = vc_sample_bound(cfg.eps_prime, cfg.delta, p.vc_dimension().max(1)).max(n0);
            Tracker::new(p.num_hypotheses(), cfg, n0, nmax)
        })
        .collect()
}

/// Batched [`super::adaptive::estimate_risks`]: one fused pass per round
/// serves every subscriber, each with its own stopping rule. Subscriber
/// `i`'s outcome is bit-identical to `estimate_risks(problems[i],
/// &cfgs[i], rng)` with an `rng` yielding the same `master`.
pub fn estimate_risks_multi<P: HrProblem + ?Sized>(
    problems: &[&P],
    cfgs: &[AdaptiveConfig],
    master: u64,
) -> Vec<AdaptiveOutcome> {
    let trackers = hit_trackers(problems, cfgs);
    drive(trackers, |reqs| run_hit_blocks(problems, master, reqs))
}

/// Batched [`super::adaptive::estimate_risks`] with shared draws (for
/// [`SharedDraw`] problems over one common sample space): overlapping
/// chunk demands are drawn once and scored by every subscriber. Same
/// bit-identity guarantee as [`estimate_risks_multi`].
pub fn estimate_risks_shared<P: SharedDraw + ?Sized>(
    problems: &[&P],
    cfgs: &[AdaptiveConfig],
    master: u64,
) -> Vec<AdaptiveOutcome> {
    let trackers = hit_trackers(problems, cfgs);
    drive(trackers, |reqs| run_shared_blocks(problems, master, reqs))
}

/// Batched [`super::weighted::estimate_weighted_risks`]: the fused
/// fractional-loss analogue of [`estimate_risks_multi`].
pub fn estimate_weighted_risks_multi<P: WeightedHrProblem + ?Sized>(
    problems: &[&P],
    cfgs: &[AdaptiveConfig],
    master: u64,
) -> Vec<AdaptiveOutcome> {
    assert_eq!(problems.len(), cfgs.len(), "one config per subscriber");
    let trackers: Vec<Tracker<LossAcc>> = problems
        .iter()
        .zip(cfgs)
        .map(|(p, cfg)| {
            let k = p.num_hypotheses();
            let n0 = pilot_budget(cfg);
            let nmax = hoeffding_samples(cfg.eps_prime, cfg.delta, k).max(n0);
            Tracker::new(k, cfg, n0, nmax)
        })
        .collect();
    drive(trackers, |reqs| run_loss_blocks(problems, master, reqs))
}
