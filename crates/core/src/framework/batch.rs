//! The parallel batch-drawing engine behind Algorithm 1.
//!
//! Both adaptive estimators ([`super::adaptive::estimate_risks`] and
//! [`super::weighted::estimate_weighted_risks`]) draw their sample blocks
//! here. A block of `count` samples is partitioned into fixed
//! [`stream::CHUNK`]-sized chunks; chunk `c` is drawn by an independent
//! counter-based RNG ([`stream::chunk_rng`]) through a per-worker
//! [`HrSampler`], so
//!
//! * workers never share mutable state (each owns its sampler scratch),
//! * the drawn values are a pure function of `(master seed, stream id,
//!   chunk index)` — **bit-identical for every thread count**, and
//! * consecutive estimator phases extend the same stream by advancing the
//!   first-chunk cursor, so a doubling round never replays chunks.
//!
//! Both accumulator kinds run through [`stream::par_grouped_fold`]: chunks
//! fold sequentially inside thread-count-independent groups and the group
//! accumulators merge left-to-right, giving `f64` losses one fixed
//! association order (integer hit counts would tolerate any order, but
//! share the discipline for free — one allocation per group instead of
//! one per chunk).

use saphyra_stats::stream;

use super::problem::HrProblem;
use super::weighted::WeightedHrProblem;

/// Stream id of the pilot (variance) pass.
pub(crate) const STREAM_PILOT: u64 = 0;
/// Stream id of the main estimation pass (all doubling rounds).
pub(crate) const STREAM_MAIN: u64 = 1;

/// Draws `count` samples from chunks `first_chunk ..` of `stream_id` and
/// returns the per-hypothesis hit counts.
pub(crate) fn sample_hit_counts<P: HrProblem + ?Sized>(
    problem: &P,
    k: usize,
    master: u64,
    stream_id: u64,
    first_chunk: u64,
    count: usize,
) -> Vec<u64> {
    if count == 0 {
        return vec![0u64; k];
    }
    let chunks = stream::num_chunks(count, stream::CHUNK);
    // u64 counts merge exactly under any grouping: one group per worker.
    let partials = stream::par_grouped_fold(
        chunks,
        stream::int_groups(),
        || (problem.sampler(), Vec::<u32>::new()),
        || vec![0u64; k],
        |(sampler, hits), counts, c| {
            let mut rng = stream::chunk_rng(master, stream_id, first_chunk + c as u64);
            let len = stream::chunk_len(count, stream::CHUNK, c);
            for _ in 0..len {
                hits.clear();
                sampler.sample_hits_into(&mut rng, hits);
                for &i in hits.iter() {
                    counts[i as usize] += 1;
                }
            }
        },
    );
    let mut total = vec![0u64; k];
    for part in partials {
        for (t, x) in total.iter_mut().zip(part) {
            *t += x;
        }
    }
    total
}

/// Streaming first and second moments of one hypothesis' losses.
///
/// Public so remote executors can carry per-unit partials over the wire:
/// the pair merges exactly (field-wise sums) and, merged in the fixed unit
/// order of [`super::multi::loss_unit_ranges`], reproduces the local `f64`
/// association order bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LossAcc {
    /// `Σ x`.
    pub sum: f64,
    /// `Σ x²`.
    pub sumsq: f64,
}

impl LossAcc {
    #[inline]
    pub fn push(&mut self, x: f64) {
        debug_assert!((0.0..=1.0 + 1e-9).contains(&x), "loss out of range: {x}");
        self.sum += x;
        self.sumsq += x * x;
    }

    /// Unbiased sample variance over `n` observations:
    /// `(Σx² − (Σx)²/N) / (N−1)`.
    pub fn sample_variance(&self, n: usize) -> f64 {
        if n < 2 {
            return 0.0;
        }
        ((self.sumsq - self.sum * self.sum / n as f64) / (n as f64 - 1.0)).max(0.0)
    }

    #[inline]
    fn merge(&mut self, other: &LossAcc) {
        self.sum += other.sum;
        self.sumsq += other.sumsq;
    }
}

/// Draws `count` weighted samples from chunks `first_chunk ..` of
/// `stream_id` and returns per-hypothesis loss accumulators.
///
/// Chunks fold inside thread-count-independent groups
/// ([`stream::par_grouped_fold`]) and groups merge left-to-right, fixing
/// the `f64` association order.
pub(crate) fn sample_loss_accs<P: WeightedHrProblem + ?Sized>(
    problem: &P,
    k: usize,
    master: u64,
    stream_id: u64,
    first_chunk: u64,
    count: usize,
) -> Vec<LossAcc> {
    if count == 0 {
        return vec![LossAcc::default(); k];
    }
    let chunks = stream::num_chunks(count, stream::CHUNK);
    let partials = stream::par_grouped_fold(
        chunks,
        stream::f64_groups(k * std::mem::size_of::<LossAcc>()),
        || (problem.sampler(), Vec::<(u32, f64)>::new()),
        || vec![LossAcc::default(); k],
        |(sampler, buf), accs, c| {
            let mut rng = stream::chunk_rng(master, stream_id, first_chunk + c as u64);
            let len = stream::chunk_len(count, stream::CHUNK, c);
            for _ in 0..len {
                buf.clear();
                sampler.sample_losses_into(&mut rng, buf);
                for &(i, x) in buf.iter() {
                    accs[i as usize].push(x);
                }
            }
        },
    );
    let mut total = vec![LossAcc::default(); k];
    for part in partials {
        for (t, p) in total.iter_mut().zip(&part) {
            t.merge(p);
        }
    }
    total
}

/// Chunks consumed by a block of `count` samples (cursor advance).
pub(crate) fn chunks_used(count: usize) -> u64 {
    stream::num_chunks(count, stream::CHUNK) as u64
}

#[cfg(test)]
mod tests {
    use super::super::problem::HrSampler;
    use super::*;
    use rand::{Rng, RngCore};

    struct Fixed {
        probs: Vec<f64>,
    }

    struct FixedSampler<'a> {
        probs: &'a [f64],
    }

    impl HrSampler for FixedSampler<'_> {
        fn sample_hits_into(&mut self, rng: &mut dyn RngCore, hits: &mut Vec<u32>) {
            for (i, &p) in self.probs.iter().enumerate() {
                if rng.gen::<f64>() < p {
                    hits.push(i as u32);
                }
            }
        }
    }

    impl HrProblem for Fixed {
        fn num_hypotheses(&self) -> usize {
            self.probs.len()
        }
        fn sampler(&self) -> Box<dyn HrSampler + '_> {
            Box::new(FixedSampler { probs: &self.probs })
        }
        fn vc_dimension(&self) -> usize {
            1
        }
    }

    #[test]
    fn hit_counts_identical_across_thread_counts() {
        let p = Fixed {
            probs: vec![0.5, 0.1, 0.9],
        };
        let reference = rayon::ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| sample_hit_counts(&p, 3, 42, STREAM_MAIN, 0, 10_000));
        for threads in [2, 4, 8] {
            let got = rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| sample_hit_counts(&p, 3, 42, STREAM_MAIN, 0, 10_000));
            assert_eq!(got, reference, "{threads} threads");
        }
    }

    #[test]
    fn disjoint_blocks_compose_like_one_block() {
        // Drawing [0, a) then [a-chunks ..] with an advanced cursor must
        // equal one contiguous block when a is chunk-aligned.
        let p = Fixed {
            probs: vec![0.3, 0.7],
        };
        let a = 4 * saphyra_stats::stream::CHUNK;
        let b = 3 * saphyra_stats::stream::CHUNK + 17;
        let whole = sample_hit_counts(&p, 2, 9, STREAM_MAIN, 0, a + b);
        let first = sample_hit_counts(&p, 2, 9, STREAM_MAIN, 0, a);
        let second = sample_hit_counts(&p, 2, 9, STREAM_MAIN, chunks_used(a), b);
        let sum: Vec<u64> = first.iter().zip(&second).map(|(x, y)| x + y).collect();
        assert_eq!(whole, sum);
    }

    #[test]
    fn streams_are_independent() {
        let p = Fixed { probs: vec![0.5] };
        let pilot = sample_hit_counts(&p, 1, 7, STREAM_PILOT, 0, 5000);
        let main = sample_hit_counts(&p, 1, 7, STREAM_MAIN, 0, 5000);
        assert_ne!(pilot, main);
    }
}
