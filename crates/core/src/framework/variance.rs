//! The variance-reduction analysis of §III-D (Claim 8).
//!
//! For a hypothesis with full expected risk `μ` and exact-subspace mass
//! `μ̂`, direct sampling sees a Bernoulli with variance `μ(1−μ)` while the
//! partitioned estimator samples a Bernoulli with mean `μ−μ̂`, variance
//! `(μ−μ̂)(1−μ+μ̂)`. Since sample complexity is roughly proportional to
//! variance (Eq. 15 with the first term dominating), the ratio of the two
//! variances is the paper's predicted sample saving.

/// `Var(Z) / Var(Z′) = (μ−μ̂)(1−μ+μ̂) / (μ(1−μ))` — Claim 8's ratio.
/// Returns 0 when the partitioned variance vanishes and 1 when `μ ∈ {0, 1}`
/// (both variances zero).
pub fn partitioned_variance_ratio(mu: f64, mu_hat: f64) -> f64 {
    assert!((0.0..=1.0).contains(&mu), "mu out of range");
    assert!(
        (0.0..=mu + 1e-12).contains(&mu_hat),
        "exact mass cannot exceed the risk"
    );
    let denom = mu * (1.0 - mu);
    if denom == 0.0 {
        return 1.0;
    }
    let rest = (mu - mu_hat).max(0.0);
    rest * (1.0 - rest) / denom
}

/// The approximate sample-saving factor `μ / (μ−μ̂)` of Claim 8 for
/// `μ ≪ 1`; `∞` when the exact part covers the whole risk.
pub fn variance_reduction_factor(mu: f64, mu_hat: f64) -> f64 {
    if mu <= 0.0 {
        return 1.0;
    }
    let rest = mu - mu_hat;
    if rest <= 0.0 {
        f64::INFINITY
    } else {
        mu / rest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_below_one_for_low_risk_hypotheses() {
        // Claim 8: μ < 1/2 implies Var(Z) < Var(Z').
        for &(mu, mu_hat) in &[(0.4, 0.1), (0.1, 0.05), (0.01, 0.002)] {
            let r = partitioned_variance_ratio(mu, mu_hat);
            assert!(r < 1.0, "mu={mu} mu_hat={mu_hat}: {r}");
        }
    }

    #[test]
    fn small_mu_approximation() {
        // For μ ≪ 1 the ratio approaches (μ−μ̂)/μ.
        let (mu, mu_hat) = (1e-4, 4e-5);
        let r = partitioned_variance_ratio(mu, mu_hat);
        assert!((r - (mu - mu_hat) / mu).abs() < 1e-3);
        let f = variance_reduction_factor(mu, mu_hat);
        assert!((f - mu / (mu - mu_hat)).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        assert_eq!(partitioned_variance_ratio(0.0, 0.0), 1.0);
        assert_eq!(partitioned_variance_ratio(1.0, 0.5), 1.0);
        assert_eq!(partitioned_variance_ratio(0.3, 0.3), 0.0);
        assert_eq!(variance_reduction_factor(0.0, 0.0), 1.0);
        assert_eq!(variance_reduction_factor(0.2, 0.2), f64::INFINITY);
    }

    #[test]
    fn no_exact_mass_means_no_reduction() {
        assert!((partitioned_variance_ratio(0.2, 0.0) - 1.0).abs() < 1e-12);
        assert_eq!(variance_reduction_factor(0.2, 0.0), 1.0);
    }
}
