//! # saphyra
//!
//! A from-scratch Rust implementation of **SaPHyRa: A Learning Theory
//! Approach to Ranking Nodes in Large Networks** (Thai, Thai, Vu, Dinh —
//! ICDE 2022, arXiv:2203.01746).
//!
//! SaPHyRa ranks a *subset* of nodes by centrality. It recasts node ranking
//! as hypothesis ranking: each target node `v` becomes a hypothesis `h_v`
//! whose expected risk under a suitable sample distribution equals `v`'s
//! centrality. The sample space is partitioned into
//!
//! * an **exact subspace** — samples directly linked to the targets, whose
//!   risk mass is computed exactly (this removes the "false zeros" that ruin
//!   rankings of low-centrality nodes, Lemma 19), and
//! * an **approximate subspace** — everything else, estimated by adaptive
//!   sampling with empirical-Bernstein stopping (Lemma 3) and
//!   VC-dimension-bounded worst-case budgets (Lemma 4).
//!
//! The combined estimate `ℓ = ℓ̂ + λ·ℓ̃` is an (ε, δ)-estimate of the risks
//! (Theorem 6) with fewer samples than direct estimation (Lemma 7,
//! Claim 8).
//!
//! Module map:
//!
//! * [`framework`] — the generic machinery (§III): problem abstraction,
//!   Algorithm 1, variance-reduction analysis.
//! * [`bc`] — SaPHyRa_bc (§IV): the betweenness-centrality instantiation
//!   with bi-component (ISP) sampling, out-reach sets, the 2-hop exact
//!   subspace, the `Gen_bc` multistage sampler and personalized VC bounds.
//! * [`kpath`] — a second instantiation on k-path centrality (§II-A),
//!   demonstrating framework generality.
//!
//! ## Quick start
//!
//! ```
//! use rand::SeedableRng;
//! use saphyra::bc::{BcIndex, SaphyraBcConfig};
//! use saphyra_graph::fixtures;
//!
//! let g = fixtures::grid_graph(8, 6);
//! let index = BcIndex::new(&g);
//! let targets: Vec<u32> = vec![3, 11, 17, 25, 33];
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let est = index.rank_subset(&targets, &SaphyraBcConfig::new(0.05, 0.1), &mut rng);
//! let ranking = est.ranking(); // best-first target indices
//! assert_eq!(ranking.len(), targets.len());
//! ```

pub mod bc;
pub mod closeness;
pub mod framework;
pub mod kpath;
pub mod params;

pub use bc::{BcEstimate, BcIndex, SaphyraBcConfig};
pub use framework::{AdaptiveOutcome, ExactPart, HrProblem, SaphyraEstimate};
