//! `Gen_bc` (Algorithm 2): rejection sampling over the PISP space, and the
//! [`crate::framework::HrProblem`] implementation driving Algorithm 1.
//!
//! A sample is drawn in four stages (component → source → target → uniform
//! shortest path via balanced bidirectional BFS restricted to the
//! component's edges) and *rejected* if it lands in the exact subspace
//! (length-2 path with a target inner node), which realizes the
//! approximate distribution `D̃` of Eq. 31.
//!
//! The problem/sampler split follows the parallel batch contract: the
//! [`BcApproxProblem`] owns the immutable PISP prefix-sum tables and index
//! maps (shared across workers by reference — they are never copied), and
//! each [`BcSampler`] owns a private [`BiBfs`] workspace and path buffer,
//! so concurrent workers draw without locks or allocation. Accept/reject
//! telemetry flows back through relaxed atomic counters (totals only —
//! per-worker interleaving is irrelevant).
//!
//! Unlike the k-path walk, `Gen_bc` is **not** a
//! [`crate::framework::SharedDraw`] problem: the rejection loop consults
//! the target set (`path_in_exact_subspace`), so the very RNG consumption
//! of a draw is personalized — two subscribers with different targets
//! diverge after the first rejected path. Cross-request batching therefore
//! fuses BC subscribers at the *schedule* level only (one parallel pass
//! per doubling round via [`crate::framework::estimate_risks_multi`]),
//! never at the draw level.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::{Rng, RngCore};
use saphyra_graph::bbbfs::BiBfs;
use saphyra_graph::{Bicomps, Graph, NodeId};

use super::isp::Pisp;
use super::outreach::Outreach;
use crate::framework::{HrProblem, HrSampler};

const NONE: u32 = u32::MAX;

/// The exact-subspace membership test of Eq. 29: a length-2 path whose
/// inner node is a target. The one definition shared by the rejection
/// loops and [`BcApproxProblem::in_exact_subspace`].
#[inline]
fn path_in_exact_subspace(a_index: &[u32], path: &[NodeId]) -> bool {
    path.len() == 3 && a_index[path[1] as usize] != NONE
}

/// The approximate-subspace sampling problem for one target set: the
/// shared, read-only half of the `Gen_bc` engine.
pub struct BcApproxProblem<'a> {
    g: &'a Graph,
    bic: &'a Bicomps,
    pisp: Pisp,
    a_index: &'a [u32],
    vc_dim: usize,
    /// Samples accepted (returned to the estimator), summed over all
    /// workers.
    accepted: AtomicU64,
    /// Samples rejected into the exact subspace (Algorithm 2 line 6).
    rejected: AtomicU64,
    /// Whether exact-subspace samples are rejected (false = the
    /// no-partitioning ablation: sample the raw PISP distribution).
    pub reject_exact: bool,
    /// Scratch for the single-sample convenience methods (not used by the
    /// batch path, which creates one scratch per worker).
    own: BcScratch,
}

/// Mutable per-drawing-head state: BFS workspace and path buffer.
struct BcScratch {
    bb: BiBfs,
    path: Vec<NodeId>,
}

impl BcScratch {
    fn new(n: usize) -> Self {
        BcScratch {
            bb: BiBfs::new(n),
            path: Vec::new(),
        }
    }
}

/// Draws one raw ISP sample into `scratch.path`.
fn sample_isp_into<R: Rng + ?Sized>(
    g: &Graph,
    bic: &Bicomps,
    pisp: &Pisp,
    scratch: &mut BcScratch,
    rng: &mut R,
) {
    let (b, s, t) = pisp.sample_pair(bic, rng);
    let filter = |slot: usize| bic.bicomp_of_slot(g, slot) == b;
    let res = scratch
        .bb
        .query(g, s, t, filter)
        .expect("co-component pair must be connected within its component");
    scratch
        .bb
        .sample_path_into(g, res, rng, filter, &mut scratch.path);
}

/// One `Gen_bc` draw into `hits`: optional rejection loop plus inner-node
/// hit extraction (endpoints never count, Eq. 6). Returns the
/// `(accepted, rejected)` deltas; shared by the per-worker [`BcSampler`]
/// and the problem's own single-sample path.
#[allow(clippy::too_many_arguments)]
fn draw_hits(
    g: &Graph,
    bic: &Bicomps,
    pisp: &Pisp,
    a_index: &[u32],
    reject_exact: bool,
    scratch: &mut BcScratch,
    rng: &mut dyn RngCore,
    hits: &mut Vec<u32>,
) -> (u64, u64) {
    let mut rejected = 0;
    if reject_exact {
        loop {
            sample_isp_into(g, bic, pisp, scratch, rng);
            if path_in_exact_subspace(a_index, &scratch.path) {
                rejected += 1;
                continue;
            }
            break;
        }
    } else {
        sample_isp_into(g, bic, pisp, scratch, rng);
    }
    let path = &scratch.path;
    let len = path.len();
    for &v in &path[1..len.saturating_sub(1)] {
        let ai = a_index[v as usize];
        if ai != NONE {
            hits.push(ai);
        }
    }
    (1, rejected)
}

impl<'a> BcApproxProblem<'a> {
    /// Builds the sampler. `a_index` maps node → target position (or
    /// `u32::MAX`); `vc_dim` is the personalized VC bound (Corollary 22).
    pub fn new(
        g: &'a Graph,
        bic: &'a Bicomps,
        outreach: &Outreach,
        targets: &[NodeId],
        a_index: &'a [u32],
        vc_dim: usize,
    ) -> Self {
        let pisp = Pisp::new(bic, outreach, targets);
        BcApproxProblem {
            g,
            bic,
            pisp,
            a_index,
            vc_dim,
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            reject_exact: true,
            own: BcScratch::new(g.num_nodes()),
        }
    }

    /// The PISP tables (exposes `η` and `I(A)`).
    pub fn pisp(&self) -> &Pisp {
        &self.pisp
    }

    /// Samples accepted so far (all workers).
    pub fn accepted(&self) -> u64 {
        self.accepted.load(Ordering::Relaxed)
    }

    /// Samples rejected into the exact subspace so far (all workers).
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// Draws one PISP path *without* the exact-subspace rejection — the raw
    /// ISP distribution, used by tests and by the no-partitioning ablation.
    pub fn sample_isp_path<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<NodeId> {
        sample_isp_into(self.g, self.bic, &self.pisp, &mut self.own, rng);
        self.own.path.clone()
    }

    /// Whether a path lies in the exact subspace `X̂` (Eq. 29).
    #[inline]
    pub fn in_exact_subspace(&self, path: &[NodeId]) -> bool {
        path_in_exact_subspace(self.a_index, path)
    }

    /// Draws one sample from `D̃` (rejection loop of Algorithm 2).
    pub fn sample_approx_path<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<NodeId> {
        let (mut accepted, mut rejected) = (0, 0);
        loop {
            sample_isp_into(self.g, self.bic, &self.pisp, &mut self.own, rng);
            if path_in_exact_subspace(self.a_index, &self.own.path) {
                rejected += 1;
                continue;
            }
            accepted += 1;
            break;
        }
        self.accepted.fetch_add(accepted, Ordering::Relaxed);
        self.rejected.fetch_add(rejected, Ordering::Relaxed);
        self.own.path.clone()
    }

    /// Empirical rejection rate (should approach `λ̂`, Lemma 17).
    pub fn rejection_rate(&self) -> f64 {
        let accepted = self.accepted();
        let rejected = self.rejected();
        let total = accepted + rejected;
        if total == 0 {
            0.0
        } else {
            rejected as f64 / total as f64
        }
    }
}

/// Per-worker drawing head of `Gen_bc`: borrows the shared tables, owns
/// the BFS scratch.
pub struct BcSampler<'p> {
    g: &'p Graph,
    bic: &'p Bicomps,
    pisp: &'p Pisp,
    a_index: &'p [u32],
    reject_exact: bool,
    scratch: BcScratch,
    local_accepted: u64,
    local_rejected: u64,
    accepted: &'p AtomicU64,
    rejected: &'p AtomicU64,
}

impl Drop for BcSampler<'_> {
    fn drop(&mut self) {
        // Telemetry flush: one atomic RMW per worker lifetime, not per
        // sample.
        self.accepted
            .fetch_add(self.local_accepted, Ordering::Relaxed);
        self.rejected
            .fetch_add(self.local_rejected, Ordering::Relaxed);
    }
}

impl HrSampler for BcSampler<'_> {
    fn sample_hits_into(&mut self, rng: &mut dyn RngCore, hits: &mut Vec<u32>) {
        let (accepted, rejected) = draw_hits(
            self.g,
            self.bic,
            self.pisp,
            self.a_index,
            self.reject_exact,
            &mut self.scratch,
            rng,
            hits,
        );
        self.local_accepted += accepted;
        self.local_rejected += rejected;
    }
}

impl HrProblem for BcApproxProblem<'_> {
    fn num_hypotheses(&self) -> usize {
        self.a_index.iter().filter(|&&i| i != NONE).count()
    }

    fn sampler(&self) -> Box<dyn HrSampler + '_> {
        Box::new(BcSampler {
            g: self.g,
            bic: self.bic,
            pisp: &self.pisp,
            a_index: self.a_index,
            reject_exact: self.reject_exact,
            scratch: BcScratch::new(self.g.num_nodes()),
            local_accepted: 0,
            local_rejected: 0,
            accepted: &self.accepted,
            rejected: &self.rejected,
        })
    }

    fn vc_dimension(&self) -> usize {
        self.vc_dim
    }

    /// Single-sample path through the problem-owned scratch: no per-call
    /// sampler allocation (overrides the default one-shot adapter).
    fn sample_hits(&mut self, rng: &mut dyn RngCore, hits: &mut Vec<u32>) {
        let (accepted, rejected) = draw_hits(
            self.g,
            self.bic,
            &self.pisp,
            self.a_index,
            self.reject_exact,
            &mut self.own,
            rng,
            hits,
        );
        *self.accepted.get_mut() += accepted;
        *self.rejected.get_mut() += rejected;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::exact2hop::build_a_index;
    use crate::bc::isp::enumerate_pair_probs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saphyra_graph::fixtures::{self, fig2::*};
    use saphyra_graph::BlockCutTree;

    fn setup(g: &Graph) -> (Bicomps, Outreach) {
        let bic = Bicomps::compute(g);
        let tree = BlockCutTree::compute(&bic);
        let or = Outreach::compute(&bic, &tree);
        (bic, or)
    }

    #[test]
    fn isp_paths_stay_inside_one_component() {
        let g = fixtures::paper_fig2();
        let (bic, or) = setup(&g);
        let all: Vec<u32> = g.nodes().collect();
        let a_index = build_a_index(11, &all);
        let mut prob = BcApproxProblem::new(&g, &bic, &or, &all, &a_index, 3);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2000 {
            let p = prob.sample_isp_path(&mut rng);
            assert!(p.len() >= 2);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
            // All edges of the path share one component.
            let b0 = bic.edge_bicomp[g.edge_id(p[0], p[1]).unwrap() as usize];
            for w in p.windows(2) {
                let b = bic.edge_bicomp[g.edge_id(w[0], w[1]).unwrap() as usize];
                assert_eq!(b, b0);
            }
        }
    }

    #[test]
    fn isp_sampling_matches_closed_form_expectation() {
        // Lemma 13 (statistical form): γ·E_{p∼Dc}[g(v,p)] + bcₐ(v) = bc(v).
        let g = fixtures::paper_fig2();
        let (bic, or) = setup(&g);
        let tree = BlockCutTree::compute(&bic);
        let all: Vec<u32> = g.nodes().collect();
        let a_index = build_a_index(11, &all);
        let mut prob = BcApproxProblem::new(&g, &bic, &or, &all, &a_index, 3);
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 400_000usize;
        let mut inner_counts = [0u64; 11];
        for _ in 0..trials {
            let p = prob.sample_isp_path(&mut rng);
            for &v in &p[1..p.len() - 1] {
                inner_counts[v as usize] += 1;
            }
        }
        let gamma = super::super::outreach::gamma(&g, &or);
        let bca = super::super::outreach::bca_values(&g, &bic, &tree);
        let bc = saphyra_graph::brandes::betweenness_exact(&g);
        for v in 0..11usize {
            let est = gamma * inner_counts[v] as f64 / trials as f64 + bca[v];
            assert!(
                (est - bc[v]).abs() < 0.01,
                "node {v}: sampled {est} vs exact {}",
                bc[v]
            );
        }
    }

    #[test]
    fn rejection_rate_matches_lambda_hat() {
        let g = fixtures::grid_graph(5, 5);
        let (bic, or) = setup(&g);
        let targets: Vec<u32> = vec![6, 12, 18];
        let a_index = build_a_index(25, &targets);
        let exact = super::super::exact2hop::exact_bc(&g, &bic, &or, &targets, &a_index);
        let mut prob = BcApproxProblem::new(&g, &bic, &or, &targets, &a_index, 4);
        let gamma_eta = prob.pisp().total_weight() / (25.0 * 24.0);
        let lambda_hat = exact.lambda_raw / gamma_eta;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30_000 {
            let _ = prob.sample_approx_path(&mut rng);
        }
        let rate = prob.rejection_rate();
        assert!(
            (rate - lambda_hat).abs() < 0.01,
            "rejection {rate} vs λ̂ {lambda_hat}"
        );
    }

    #[test]
    fn approx_samples_never_come_from_exact_subspace() {
        let g = fixtures::grid_graph(4, 4);
        let (bic, or) = setup(&g);
        let targets: Vec<u32> = vec![5, 10];
        let a_index = build_a_index(16, &targets);
        let mut prob = BcApproxProblem::new(&g, &bic, &or, &targets, &a_index, 3);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..3000 {
            let p = prob.sample_approx_path(&mut rng);
            assert!(!prob.in_exact_subspace(&p));
        }
    }

    #[test]
    fn pair_marginals_match_enumeration_under_sampling() {
        // End-to-end check that path endpoints follow the PISP pair law.
        let g = fixtures::two_triangles_bridge();
        let (bic, or) = setup(&g);
        let targets = vec![2u32];
        let a_index = build_a_index(6, &targets);
        let mut prob = BcApproxProblem::new(&g, &bic, &or, &targets, &a_index, 2);
        let probs = enumerate_pair_probs(&g, &bic, &or, prob.pisp());
        let mut expect = std::collections::BTreeMap::new();
        for (_, s, t, q) in probs {
            *expect.entry((s, t)).or_insert(0.0) += q;
        }
        let mut rng = StdRng::seed_from_u64(21);
        let trials = 100_000;
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..trials {
            let p = prob.sample_isp_path(&mut rng);
            *counts.entry((p[0], *p.last().unwrap())).or_insert(0usize) += 1;
        }
        for ((s, t), &q) in &expect {
            let got = *counts.get(&(*s, *t)).unwrap_or(&0) as f64 / trials as f64;
            assert!(
                (got - q).abs() < 0.01 + 0.1 * q,
                "pair ({s},{t}): {got} vs {q}"
            );
        }
    }

    #[test]
    fn sampled_path_stream_is_byte_identical_per_seed() {
        // The determinism contract: the Gen(·) draw stream may depend only
        // on the seed — never on map iteration order or address layout.
        // Two fresh problem instances must emit identical path sequences.
        let g = fixtures::two_triangles_bridge();
        let (bic, or) = setup(&g);
        let targets = vec![2u32];
        let a_index = build_a_index(6, &targets);
        let draw = || {
            let mut prob = BcApproxProblem::new(&g, &bic, &or, &targets, &a_index, 2);
            let mut rng = StdRng::seed_from_u64(77);
            (0..2000)
                .map(|_| prob.sample_isp_path(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn hr_problem_interface() {
        use crate::framework::HrProblem;
        let g = fixtures::paper_fig2();
        let (bic, or) = setup(&g);
        let targets = vec![C, D];
        let a_index = build_a_index(11, &targets);
        let mut prob = BcApproxProblem::new(&g, &bic, &or, &targets, &a_index, 2);
        assert_eq!(prob.num_hypotheses(), 2);
        assert_eq!(prob.vc_dimension(), 2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = Vec::new();
        for _ in 0..500 {
            hits.clear();
            prob.sample_hits(&mut rng, &mut hits);
            assert!(hits.len() <= 2);
            for &h in &hits {
                assert!(h < 2);
            }
        }
    }

    #[test]
    fn concurrent_samplers_share_tables_and_flush_telemetry() {
        let g = fixtures::grid_graph(6, 6);
        let (bic, or) = setup(&g);
        let targets: Vec<u32> = vec![7, 14, 21, 28];
        let a_index = build_a_index(36, &targets);
        let prob = BcApproxProblem::new(&g, &bic, &or, &targets, &a_index, 3);
        let per_worker = 2000u64;
        std::thread::scope(|scope| {
            for w in 0..4u64 {
                let prob = &prob;
                scope.spawn(move || {
                    let mut sampler = prob.sampler();
                    let mut rng = StdRng::seed_from_u64(100 + w);
                    let mut hits = Vec::new();
                    for _ in 0..per_worker {
                        hits.clear();
                        sampler.sample_hits_into(&mut rng, &mut hits);
                    }
                });
            }
        });
        // Every accepted draw was counted exactly once after the drops.
        assert_eq!(prob.accepted(), 4 * per_worker);
        // Rejection happens on this instance (targets sit on many 2-paths).
        assert!(prob.rejected() > 0);
    }

    #[test]
    fn batch_and_single_sample_paths_agree_in_distribution() {
        // The batch sampler head and the legacy single-sample path draw
        // from the same D̃: compare per-hypothesis hit frequencies.
        let g = fixtures::grid_graph(6, 5);
        let (bic, or) = setup(&g);
        let targets: Vec<u32> = vec![7, 8, 14, 21];
        let a_index = build_a_index(30, &targets);
        let mut prob = BcApproxProblem::new(&g, &bic, &or, &targets, &a_index, 3);
        let trials = 60_000usize;

        let mut batch_counts = vec![0u64; targets.len()];
        {
            let mut sampler = prob.sampler();
            let mut rng = StdRng::seed_from_u64(11);
            let mut hits = Vec::new();
            for _ in 0..trials {
                hits.clear();
                sampler.sample_hits_into(&mut rng, &mut hits);
                for &h in &hits {
                    batch_counts[h as usize] += 1;
                }
            }
        }
        let mut single_counts = vec![0u64; targets.len()];
        let mut rng = StdRng::seed_from_u64(12);
        let mut hits = Vec::new();
        for _ in 0..trials {
            hits.clear();
            prob.sample_hits(&mut rng, &mut hits);
            for &h in &hits {
                single_counts[h as usize] += 1;
            }
        }
        for i in 0..targets.len() {
            let a = batch_counts[i] as f64 / trials as f64;
            let b = single_counts[i] as f64 / trials as f64;
            assert!((a - b).abs() < 0.02, "hypothesis {i}: batch {a} single {b}");
        }
    }
}
