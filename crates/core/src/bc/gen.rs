//! `Gen_bc` (Algorithm 2): rejection sampling over the PISP space, and the
//! [`crate::framework::HrProblem`] implementation driving Algorithm 1.
//!
//! A sample is drawn in four stages (component → source → target → uniform
//! shortest path via balanced bidirectional BFS restricted to the
//! component's edges) and *rejected* if it lands in the exact subspace
//! (length-2 path with a target inner node), which realizes the
//! approximate distribution `D̃` of Eq. 31.

use rand::Rng;
use saphyra_graph::bbbfs::BiBfs;
use saphyra_graph::{Bicomps, Graph, NodeId};

use super::isp::Pisp;
use super::outreach::Outreach;
use crate::framework::HrProblem;

const NONE: u32 = u32::MAX;

/// The approximate-subspace sampling problem for one target set.
pub struct BcApproxProblem<'a> {
    g: &'a Graph,
    bic: &'a Bicomps,
    pisp: Pisp,
    a_index: &'a [u32],
    vc_dim: usize,
    bb: BiBfs,
    path_buf: Vec<NodeId>,
    /// Samples accepted (returned to the estimator).
    pub accepted: u64,
    /// Samples rejected into the exact subspace (Algorithm 2 line 6).
    pub rejected: u64,
    /// Whether exact-subspace samples are rejected (false = the
    /// no-partitioning ablation: sample the raw PISP distribution).
    pub reject_exact: bool,
}

impl<'a> BcApproxProblem<'a> {
    /// Builds the sampler. `a_index` maps node → target position (or
    /// `u32::MAX`); `vc_dim` is the personalized VC bound (Corollary 22).
    pub fn new(
        g: &'a Graph,
        bic: &'a Bicomps,
        outreach: &Outreach,
        targets: &[NodeId],
        a_index: &'a [u32],
        vc_dim: usize,
    ) -> Self {
        let pisp = Pisp::new(bic, outreach, targets);
        BcApproxProblem {
            g,
            bic,
            pisp,
            a_index,
            vc_dim,
            bb: BiBfs::new(g.num_nodes()),
            path_buf: Vec::new(),
            accepted: 0,
            rejected: 0,
            reject_exact: true,
        }
    }

    /// The PISP tables (exposes `η` and `I(A)`).
    pub fn pisp(&self) -> &Pisp {
        &self.pisp
    }

    /// Draws one PISP path *without* the exact-subspace rejection — the raw
    /// ISP distribution, used by tests and by the no-partitioning ablation.
    pub fn sample_isp_path<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<NodeId> {
        self.sample_isp_into(rng);
        self.path_buf.clone()
    }

    /// Fills the internal path buffer with one raw ISP sample (the
    /// allocation-free hot path of the estimator).
    fn sample_isp_into<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let (b, s, t) = self.pisp.sample_pair(self.bic, rng);
        let g = self.g;
        let bic = self.bic;
        let filter = |slot: usize| bic.bicomp_of_slot(g, slot) == b;
        let res = self
            .bb
            .query(g, s, t, filter)
            .expect("co-component pair must be connected within its component");
        self.bb.sample_path_into(g, res, rng, filter, &mut self.path_buf);
    }

    /// Whether a path lies in the exact subspace `X̂` (Eq. 29).
    #[inline]
    pub fn in_exact_subspace(&self, path: &[NodeId]) -> bool {
        path.len() == 3 && self.a_index[path[1] as usize] != NONE
    }

    /// Draws one sample from `D̃` (rejection loop of Algorithm 2).
    pub fn sample_approx_path<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<NodeId> {
        self.sample_approx_into(rng);
        self.path_buf.clone()
    }

    /// Buffer-filling variant of [`BcApproxProblem::sample_approx_path`].
    fn sample_approx_into<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        loop {
            self.sample_isp_into(rng);
            if self.path_buf.len() == 3 && self.a_index[self.path_buf[1] as usize] != NONE {
                self.rejected += 1;
                continue;
            }
            self.accepted += 1;
            return;
        }
    }

    /// Empirical rejection rate (should approach `λ̂`, Lemma 17).
    pub fn rejection_rate(&self) -> f64 {
        let total = self.accepted + self.rejected;
        if total == 0 {
            0.0
        } else {
            self.rejected as f64 / total as f64
        }
    }
}

impl HrProblem for BcApproxProblem<'_> {
    fn num_hypotheses(&self) -> usize {
        self.a_index.iter().filter(|&&i| i != NONE).count()
    }

    fn sample_hits(&mut self, rng: &mut dyn rand::RngCore, hits: &mut Vec<u32>) {
        if self.reject_exact {
            self.sample_approx_into(rng);
        } else {
            self.sample_isp_into(rng);
        }
        // Inner nodes only: endpoints are never counted (Eq. 6).
        let len = self.path_buf.len();
        for &v in &self.path_buf[1..len.saturating_sub(1)] {
            let ai = self.a_index[v as usize];
            if ai != NONE {
                hits.push(ai);
            }
        }
    }

    fn vc_dimension(&self) -> usize {
        self.vc_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::exact2hop::build_a_index;
    use crate::bc::isp::enumerate_pair_probs;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saphyra_graph::fixtures::{self, fig2::*};
    use saphyra_graph::BlockCutTree;

    fn setup(g: &Graph) -> (Bicomps, Outreach) {
        let bic = Bicomps::compute(g);
        let tree = BlockCutTree::compute(&bic);
        let or = Outreach::compute(&bic, &tree);
        (bic, or)
    }

    #[test]
    fn isp_paths_stay_inside_one_component() {
        let g = fixtures::paper_fig2();
        let (bic, or) = setup(&g);
        let all: Vec<u32> = g.nodes().collect();
        let a_index = build_a_index(11, &all);
        let mut prob = BcApproxProblem::new(&g, &bic, &or, &all, &a_index, 3);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..2000 {
            let p = prob.sample_isp_path(&mut rng);
            assert!(p.len() >= 2);
            for w in p.windows(2) {
                assert!(g.has_edge(w[0], w[1]));
            }
            // All edges of the path share one component.
            let b0 = bic.edge_bicomp[g.edge_id(p[0], p[1]).unwrap() as usize];
            for w in p.windows(2) {
                let b = bic.edge_bicomp[g.edge_id(w[0], w[1]).unwrap() as usize];
                assert_eq!(b, b0);
            }
        }
    }

    #[test]
    fn isp_sampling_matches_closed_form_expectation() {
        // Lemma 13 (statistical form): γ·E_{p∼Dc}[g(v,p)] + bcₐ(v) = bc(v).
        let g = fixtures::paper_fig2();
        let (bic, or) = setup(&g);
        let tree = BlockCutTree::compute(&bic);
        let all: Vec<u32> = g.nodes().collect();
        let a_index = build_a_index(11, &all);
        let mut prob = BcApproxProblem::new(&g, &bic, &or, &all, &a_index, 3);
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 400_000usize;
        let mut inner_counts = [0u64; 11];
        for _ in 0..trials {
            let p = prob.sample_isp_path(&mut rng);
            for &v in &p[1..p.len() - 1] {
                inner_counts[v as usize] += 1;
            }
        }
        let gamma = super::super::outreach::gamma(&g, &or);
        let bca = super::super::outreach::bca_values(&g, &bic, &tree);
        let bc = saphyra_graph::brandes::betweenness_exact(&g);
        for v in 0..11usize {
            let est = gamma * inner_counts[v] as f64 / trials as f64 + bca[v];
            assert!(
                (est - bc[v]).abs() < 0.01,
                "node {v}: sampled {est} vs exact {}",
                bc[v]
            );
        }
    }

    #[test]
    fn rejection_rate_matches_lambda_hat() {
        let g = fixtures::grid_graph(5, 5);
        let (bic, or) = setup(&g);
        let targets: Vec<u32> = vec![6, 12, 18];
        let a_index = build_a_index(25, &targets);
        let exact = super::super::exact2hop::exact_bc(&g, &bic, &or, &targets, &a_index);
        let mut prob = BcApproxProblem::new(&g, &bic, &or, &targets, &a_index, 4);
        let gamma_eta = prob.pisp().total_weight() / (25.0 * 24.0);
        let lambda_hat = exact.lambda_raw / gamma_eta;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30_000 {
            let _ = prob.sample_approx_path(&mut rng);
        }
        let rate = prob.rejection_rate();
        assert!(
            (rate - lambda_hat).abs() < 0.01,
            "rejection {rate} vs λ̂ {lambda_hat}"
        );
    }

    #[test]
    fn approx_samples_never_come_from_exact_subspace() {
        let g = fixtures::grid_graph(4, 4);
        let (bic, or) = setup(&g);
        let targets: Vec<u32> = vec![5, 10];
        let a_index = build_a_index(16, &targets);
        let mut prob = BcApproxProblem::new(&g, &bic, &or, &targets, &a_index, 3);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..3000 {
            let p = prob.sample_approx_path(&mut rng);
            assert!(!prob.in_exact_subspace(&p));
        }
    }

    #[test]
    fn pair_marginals_match_enumeration_under_sampling() {
        // End-to-end check that path endpoints follow the PISP pair law.
        let g = fixtures::two_triangles_bridge();
        let (bic, or) = setup(&g);
        let targets = vec![2u32];
        let a_index = build_a_index(6, &targets);
        let mut prob = BcApproxProblem::new(&g, &bic, &or, &targets, &a_index, 2);
        let probs = enumerate_pair_probs(&g, &bic, &or, prob.pisp());
        let mut expect = std::collections::HashMap::new();
        for (_, s, t, q) in probs {
            *expect.entry((s, t)).or_insert(0.0) += q;
        }
        let mut rng = StdRng::seed_from_u64(21);
        let trials = 100_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..trials {
            let p = prob.sample_isp_path(&mut rng);
            *counts.entry((p[0], *p.last().unwrap())).or_insert(0usize) += 1;
        }
        for ((s, t), &q) in &expect {
            let got = *counts.get(&(*s, *t)).unwrap_or(&0) as f64 / trials as f64;
            assert!((got - q).abs() < 0.01 + 0.1 * q, "pair ({s},{t}): {got} vs {q}");
        }
    }

    #[test]
    fn hr_problem_interface() {
        use crate::framework::HrProblem;
        let g = fixtures::paper_fig2();
        let (bic, or) = setup(&g);
        let targets = vec![C, D];
        let a_index = build_a_index(11, &targets);
        let mut prob = BcApproxProblem::new(&g, &bic, &or, &targets, &a_index, 2);
        assert_eq!(prob.num_hypotheses(), 2);
        assert_eq!(prob.vc_dimension(), 2);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hits = Vec::new();
        for _ in 0..500 {
            hits.clear();
            prob.sample_hits(&mut rng, &mut hits);
            assert!(hits.len() <= 2);
            for &h in &hits {
                assert!(h < 2);
            }
        }
    }
}
