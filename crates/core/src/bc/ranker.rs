//! SaPHyRa_bc end-to-end (paper §IV-D, Theorem 24): preprocessing index,
//! subset ranking driver, and the final estimate assembly
//! `b̃c(v) = bcₐ(v) + γη·(ℓ̂_v + λ·ℓ̃_v)`.

use rand::RngCore;
use saphyra_graph::{Bicomps, BlockCutTree, DeltaError, EdgeDelta, Graph, NodeId};

use super::exact2hop::{build_a_index, exact_bc};
use super::gen::BcApproxProblem;
use super::outreach::{bca_values, gamma, Outreach};
use super::vcbound::{vc_bounds_from, VcBoundReport, VcPrecomp};
use crate::framework::{
    saphyra_estimate_batch_with, AdaptiveConfig, AdaptiveOutcome, BatchSubscriber, ExactPart,
    ExecError,
};

/// Accuracy configuration of a SaPHyRa_bc run.
#[derive(Debug, Clone, Copy)]
pub struct SaphyraBcConfig {
    /// Additive error target ε on betweenness values (Theorem 24).
    pub eps: f64,
    /// Failure probability δ.
    pub delta: f64,
    /// Ablation: when false, skip `Exact_bc` and the rejection step —
    /// the estimator degrades to direct ISP sampling (λ̂ = 0).
    pub use_exact_subspace: bool,
    /// Ablation: when false, draw the full `N_max` budget without
    /// Bernstein checks.
    pub adaptive: bool,
}

impl SaphyraBcConfig {
    /// Standard configuration (exact subspace and adaptive stopping on).
    pub fn new(eps: f64, delta: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1)");
        assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
        SaphyraBcConfig {
            eps,
            delta,
            use_exact_subspace: true,
            adaptive: true,
        }
    }

    /// Disables the exact subspace (sample-space-partitioning ablation).
    pub fn without_exact_subspace(mut self) -> Self {
        self.use_exact_subspace = false;
        self
    }

    /// Disables adaptive stopping (fixed VC-budget ablation).
    pub fn with_fixed_budget(mut self) -> Self {
        self.adaptive = false;
        self
    }
}

/// Telemetry of one ranking run.
#[derive(Debug, Clone)]
pub struct BcRunStats {
    /// ISP normalizer γ (Eq. 19).
    pub gamma: f64,
    /// PISP mass η (Eq. 23).
    pub eta: f64,
    /// Exact-subspace mass λ̂ (Lemma 17).
    pub lambda_hat: f64,
    /// Personalized VC bound used for `N_max` (Corollary 22).
    pub vc: VcBoundReport,
    /// ε passed to the inner framework (ε / (γη); see DESIGN.md erratum).
    pub eps_inner: f64,
    /// Main-phase samples drawn.
    pub samples: usize,
    /// Pilot samples drawn.
    pub pilot_samples: usize,
    /// Samples rejected into the exact subspace.
    pub rejected: u64,
    /// CSR slots visited by `Exact_bc` (the `K` of Lemma 18).
    pub exact_work: u64,
    /// Whether the Bernstein check stopped before `N_max`.
    pub converged_early: bool,
    /// Worst-case sample budget.
    pub nmax: usize,
    /// Bernstein rounds run.
    pub rounds: usize,
}

/// Betweenness estimates for a target subset, decomposed by source.
#[derive(Debug, Clone)]
pub struct BcEstimate {
    /// The target nodes, in caller order.
    pub targets: Vec<NodeId>,
    /// Estimated betweenness `b̃c(v)`, aligned with `targets`.
    pub bc: Vec<f64>,
    /// Break-point component `bcₐ(v)` (exact, Eq. 21).
    pub bca_part: Vec<f64>,
    /// 2-hop exact-subspace component `γη·ℓ̂_v` (exact, Lemma 17).
    pub exact_path_part: Vec<f64>,
    /// Sampled component `γη·λ·ℓ̃_v`.
    pub approx_part: Vec<f64>,
    /// Run telemetry.
    pub stats: BcRunStats,
}

impl BcEstimate {
    /// Target positions sorted best-first (highest estimate, ties by
    /// position — the paper's id tie-break for targets given in id order).
    pub fn ranking(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.bc.len()).collect();
        idx.sort_by(|&a, &b| {
            self.bc[b]
                .partial_cmp(&self.bc[a])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        idx
    }

    /// The `k` highest-ranked targets as `(node, estimate)` pairs.
    pub fn top_k(&self, k: usize) -> Vec<(NodeId, f64)> {
        self.ranking()
            .into_iter()
            .take(k)
            .map(|i| (self.targets[i], self.bc[i]))
            .collect()
    }

    /// The estimate for a specific target node, if it was ranked.
    pub fn bc_of(&self, v: NodeId) -> Option<f64> {
        self.targets
            .iter()
            .position(|&t| t == v)
            .map(|i| self.bc[i])
    }
}

/// Reusable preprocessing for SaPHyRa_bc on one graph: biconnected
/// decomposition, block-cut tree, out-reach sets, γ, bcₐ and the
/// target-independent VC-bound precomputation. Unlike [`BcIndex`] it does
/// *not* borrow the graph, so a long-lived service can store the two
/// side by side (e.g. behind one `Arc`) and share them across worker
/// threads; every ranking method takes the graph explicitly.
#[derive(Debug)]
pub struct BcDecomposition {
    /// Biconnected components.
    pub bic: Bicomps,
    /// Block-cut tree with branch weights.
    pub tree: BlockCutTree,
    /// Out-reach sets and pair weights.
    pub outreach: Outreach,
    /// Per-node break-point mass bcₐ (Eq. 21).
    pub bca: Vec<f64>,
    /// ISP normalizer γ (Eq. 19).
    pub gamma: f64,
    /// Target-independent part of the Table I bounds.
    pub vc_precomp: VcPrecomp,
}

/// Result of [`BcDecomposition::apply_delta`]: the patched graph, its
/// refreshed decomposition, and the dirty-region mask a serving layer needs
/// for component-scoped cache invalidation.
#[derive(Debug)]
pub struct DeltaOutcome {
    /// The patched graph.
    pub graph: Graph,
    /// The refreshed decomposition (structurally equal to a from-scratch
    /// [`BcDecomposition::compute`] of `graph`).
    pub dec: BcDecomposition,
    /// Per node: whether its connected component intersects the delta.
    /// Rankings whose targets avoid every dirty node are byte-identical
    /// before and after the patch.
    pub dirty_nodes: Vec<bool>,
    /// Edges actually added.
    pub inserted: usize,
    /// Edges actually removed.
    pub deleted: usize,
}

impl BcDecomposition {
    /// Builds the decomposition for `graph` (O(m + n) plus one BFS per
    /// connected/biconnected component for the diameter bounds).
    pub fn compute(graph: &Graph) -> Self {
        let bic = Bicomps::compute(graph);
        let tree = BlockCutTree::compute(&bic);
        let outreach = Outreach::compute(&bic, &tree);
        let bca = bca_values(graph, &bic, &tree);
        let gamma = gamma(graph, &outreach);
        let vc_precomp = VcPrecomp::compute(graph, &bic);
        BcDecomposition {
            bic,
            tree,
            outreach,
            bca,
            gamma,
            vc_precomp,
        }
    }

    /// Applies an edge delta to `graph` (the graph this decomposition was
    /// computed from), producing the patched graph and its refreshed
    /// decomposition.
    ///
    /// Articulation structure and the per-bicomp diameter BFSes — the
    /// expensive parts — re-run only for the connected components whose
    /// vertex sets intersect the delta; untouched components' state is
    /// spliced through the id renumbering. The O(n + m)-cheap derivations
    /// (block-cut tree, out-reach, bcₐ, γ, the VD sweep) re-run in full.
    /// Debug builds assert the result is structurally identical to
    /// [`BcDecomposition::compute`] on the patched graph.
    pub fn apply_delta(
        &self,
        graph: &Graph,
        delta: &EdgeDelta,
    ) -> Result<DeltaOutcome, DeltaError> {
        let applied = saphyra_graph::delta::apply(graph, &self.bic, delta)?;
        let saphyra_graph::AppliedDelta {
            graph: new_graph,
            bicomps: bic,
            bicomp_map,
            dirty_nodes,
            inserted,
            deleted,
            ..
        } = applied;
        let tree = BlockCutTree::compute(&bic);
        let outreach = Outreach::compute(&bic, &tree);
        let bca = bca_values(&new_graph, &bic, &tree);
        let gamma = gamma(&new_graph, &outreach);
        let vc_precomp = VcPrecomp::refresh(&new_graph, &bic, &self.vc_precomp, &bicomp_map);
        let dec = BcDecomposition {
            bic,
            tree,
            outreach,
            bca,
            gamma,
            vc_precomp,
        };
        debug_assert!(
            dec.structurally_eq(&BcDecomposition::compute(&new_graph)),
            "incremental decomposition diverged from a from-scratch rebuild"
        );
        Ok(DeltaOutcome {
            graph: new_graph,
            dec,
            dirty_nodes,
            inserted,
            deleted,
        })
    }

    /// Bit-level structural equality (floats compared by bit pattern) — the
    /// invariant [`BcDecomposition::apply_delta`] maintains against a
    /// from-scratch [`BcDecomposition::compute`] of the patched graph.
    pub fn structurally_eq(&self, other: &BcDecomposition) -> bool {
        let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        self.bic == other.bic
            && self.tree == other.tree
            && self.outreach.r == other.outreach.r
            && bits(&self.outreach.pair_weight) == bits(&other.outreach.pair_weight)
            && self.outreach.total_weight.to_bits() == other.outreach.total_weight.to_bits()
            && bits(&self.bca) == bits(&other.bca)
            && self.gamma.to_bits() == other.gamma.to_bits()
            && self.vc_precomp.vd_upper == other.vc_precomp.vd_upper
            && self.vc_precomp.bd_upper == other.vc_precomp.bd_upper
            && self.vc_precomp.bicomp_diam_upper == other.vc_precomp.bicomp_diam_upper
    }

    /// Ranks the given target subset (SaPHyRa_bc) on `graph`, which must be
    /// the graph this decomposition was computed from. Targets must be
    /// unique node ids; the output is aligned with the input order.
    pub fn rank_subset(
        &self,
        graph: &Graph,
        targets: &[NodeId],
        cfg: &SaphyraBcConfig,
        rng: &mut dyn RngCore,
    ) -> BcEstimate {
        let n = graph.num_nodes();
        let k = targets.len();
        let a_index = build_a_index(n, targets);
        let vc = vc_bounds_from(&self.vc_precomp, graph, &self.bic, targets);

        let mut prob = BcApproxProblem::new(
            graph,
            &self.bic,
            &self.outreach,
            targets,
            &a_index,
            vc.vc_subset,
        );
        let eta = prob.pisp().eta;
        let gamma_eta = self.gamma * eta;
        let bca_part: Vec<f64> = targets.iter().map(|&v| self.bca[v as usize]).collect();

        if prob.pisp().is_empty() || gamma_eta <= 0.0 {
            // No PISP mass: betweenness of the targets is exactly bcₐ.
            let stats = BcRunStats {
                gamma: self.gamma,
                eta,
                lambda_hat: 0.0,
                vc,
                eps_inner: cfg.eps,
                samples: 0,
                pilot_samples: 0,
                rejected: 0,
                exact_work: 0,
                converged_early: true,
                nmax: 0,
                rounds: 0,
            };
            return BcEstimate {
                targets: targets.to_vec(),
                bc: bca_part.clone(),
                bca_part,
                exact_path_part: vec![0.0; k],
                approx_part: vec![0.0; k],
                stats,
            };
        }

        // Exact oracle (Algorithm 1 line 3); the ablation degrades to
        // direct ISP sampling with an empty exact subspace.
        let (exact_part, exact_work) = if cfg.use_exact_subspace {
            let exact = exact_bc(graph, &self.bic, &self.outreach, targets, &a_index);
            let lambda_hat = (exact.lambda_raw / gamma_eta).clamp(0.0, 1.0);
            let exact_risks: Vec<f64> = exact.exact_raw.iter().map(|&x| x / gamma_eta).collect();
            (
                ExactPart {
                    lambda_hat,
                    exact_risks,
                },
                exact.work,
            )
        } else {
            prob.reject_exact = false;
            (ExactPart::trivial(k), 0)
        };
        let lambda_hat = exact_part.lambda_hat;

        // Theorem 24 chain: b̃c − bc = γη(ℓ − R), so the inner framework
        // must reach ε/(γη) on the combined risk (the framework further
        // divides by λ for the approximate subspace).
        let eps_inner = cfg.eps / gamma_eta;
        let est = crate::framework::saphyra_estimate_cfg(
            &prob,
            &exact_part,
            eps_inner,
            cfg.delta,
            cfg.adaptive,
            rng,
        );

        let exact_path_part: Vec<f64> = est.exact_part.iter().map(|&x| gamma_eta * x).collect();
        let approx_part: Vec<f64> = est
            .approx_part
            .iter()
            .map(|&x| gamma_eta * est.lambda * x)
            .collect();
        let bc: Vec<f64> = (0..k)
            .map(|i| bca_part[i] + exact_path_part[i] + approx_part[i])
            .collect();

        let outcome: &AdaptiveOutcome = &est.outcome;
        let stats = BcRunStats {
            gamma: self.gamma,
            eta,
            lambda_hat,
            vc,
            eps_inner,
            samples: outcome.samples_used,
            pilot_samples: outcome.pilot_samples,
            rejected: prob.rejected(),
            exact_work,
            converged_early: outcome.converged_early,
            nmax: outcome.nmax,
            rounds: outcome.rounds_run,
        };
        BcEstimate {
            targets: targets.to_vec(),
            bc,
            bca_part,
            exact_path_part,
            approx_part,
            stats,
        }
    }

    /// Ranks several target subsets at once through one fused sampling
    /// stream (the batched-service path).
    ///
    /// ISP draws are *personalized* — the rejection step consults each
    /// subset's exact subspace — so draws cannot be shared across
    /// subscribers; instead the doubling schedules are fused into one
    /// parallel pass per round, with per-subscriber stopping. Every
    /// estimate is bit-identical to [`BcDecomposition::rank_subset`] run
    /// alone against an `rng` yielding the same master seed.
    pub fn rank_subset_multi(
        &self,
        graph: &Graph,
        sets: &[Vec<NodeId>],
        cfg: &SaphyraBcConfig,
        rng: &mut dyn RngCore,
    ) -> Vec<BcEstimate> {
        self.rank_subset_multi_with(graph, sets, cfg, rng, |_, problems, cfgs, master| {
            Ok(crate::framework::estimate_risks_multi(
                problems, cfgs, master,
            ))
        })
        .expect("local execution is infallible")
    }

    /// [`BcDecomposition::rank_subset_multi`] against a caller-supplied
    /// estimation engine (e.g. a sharded [`crate::framework::BlockExec`]).
    ///
    /// The engine receives the subscribers that actually sample — sets
    /// surviving both the PISP prefilter (non-empty PISP, `γη > 0`) and the
    /// `λ > 0` check — with their **original set indices**, so a remote
    /// executor can tell its backends which target set each demand belongs
    /// to. Engines honoring the [`crate::framework::BlockExec`] contract
    /// yield estimates bit-identical to [`BcDecomposition::rank_subset_multi`].
    pub fn rank_subset_multi_with(
        &self,
        graph: &Graph,
        sets: &[Vec<NodeId>],
        cfg: &SaphyraBcConfig,
        rng: &mut dyn RngCore,
        engine: impl FnOnce(
            &[usize],
            &[&dyn crate::framework::HrProblem],
            &[AdaptiveConfig],
            u64,
        ) -> Result<Vec<AdaptiveOutcome>, ExecError>,
    ) -> Result<Vec<BcEstimate>, ExecError> {
        let n = graph.num_nodes();
        let a_indexes: Vec<Vec<u32>> = sets.iter().map(|t| build_a_index(n, t)).collect();
        let vcs: Vec<VcBoundReport> = sets
            .iter()
            .map(|t| vc_bounds_from(&self.vc_precomp, graph, &self.bic, t))
            .collect();
        let mut probs: Vec<BcApproxProblem> = sets
            .iter()
            .zip(&a_indexes)
            .zip(&vcs)
            .map(|((t, ai), vc)| {
                BcApproxProblem::new(graph, &self.bic, &self.outreach, t, ai, vc.vc_subset)
            })
            .collect();

        // Per-set prelude, mirroring `rank_subset` line by line: η, the
        // exact oracle (or the ablation), and ε/(γη). Sets with no PISP
        // mass never reach the sampling engine.
        let mut exact_parts: Vec<Option<(ExactPart, u64)>> = Vec::with_capacity(sets.len());
        let mut gamma_etas = vec![0.0f64; sets.len()];
        let mut sampled: Vec<usize> = Vec::new();
        for i in 0..sets.len() {
            let eta = probs[i].pisp().eta;
            gamma_etas[i] = self.gamma * eta;
            if probs[i].pisp().is_empty() || gamma_etas[i] <= 0.0 {
                exact_parts.push(None);
                continue;
            }
            let part = if cfg.use_exact_subspace {
                let exact = exact_bc(graph, &self.bic, &self.outreach, &sets[i], &a_indexes[i]);
                let lambda_hat = (exact.lambda_raw / gamma_etas[i]).clamp(0.0, 1.0);
                let exact_risks: Vec<f64> =
                    exact.exact_raw.iter().map(|&x| x / gamma_etas[i]).collect();
                (
                    ExactPart {
                        lambda_hat,
                        exact_risks,
                    },
                    exact.work,
                )
            } else {
                probs[i].reject_exact = false;
                (ExactPart::trivial(sets[i].len()), 0)
            };
            exact_parts.push(Some(part));
            sampled.push(i);
        }

        let subs: Vec<BatchSubscriber<BcApproxProblem>> = sampled
            .iter()
            .map(|&i| BatchSubscriber {
                problem: &probs[i],
                exact: &exact_parts[i].as_ref().expect("sampled set").0,
                eps: cfg.eps / gamma_etas[i],
                delta: cfg.delta,
            })
            .collect();
        let ests = saphyra_estimate_batch_with(&subs, cfg.adaptive, rng, {
            let sampled = &sampled;
            move |inner, problems, cfgs, master| {
                // `inner` indexes `subs`; translate to original set indices.
                let orig: Vec<usize> = inner.iter().map(|&j| sampled[j]).collect();
                let dyns: Vec<&dyn crate::framework::HrProblem> =
                    problems.iter().map(|&p| p as _).collect();
                engine(&orig, &dyns, cfgs, master)
            }
        })?;
        let mut ests = ests.into_iter();
        drop(subs);

        Ok((0..sets.len())
            .map(|i| {
                let targets = &sets[i];
                let k = targets.len();
                let eta = probs[i].pisp().eta;
                let gamma_eta = gamma_etas[i];
                let bca_part: Vec<f64> = targets.iter().map(|&v| self.bca[v as usize]).collect();
                let Some((exact_part, exact_work)) = &exact_parts[i] else {
                    // No PISP mass: betweenness of the targets is exactly bcₐ.
                    let stats = BcRunStats {
                        gamma: self.gamma,
                        eta,
                        lambda_hat: 0.0,
                        vc: vcs[i],
                        eps_inner: cfg.eps,
                        samples: 0,
                        pilot_samples: 0,
                        rejected: 0,
                        exact_work: 0,
                        converged_early: true,
                        nmax: 0,
                        rounds: 0,
                    };
                    return BcEstimate {
                        targets: targets.clone(),
                        bc: bca_part.clone(),
                        bca_part,
                        exact_path_part: vec![0.0; k],
                        approx_part: vec![0.0; k],
                        stats,
                    };
                };
                let est = ests.next().expect("one estimate per sampled set");
                let exact_path_part: Vec<f64> =
                    est.exact_part.iter().map(|&x| gamma_eta * x).collect();
                let approx_part: Vec<f64> = est
                    .approx_part
                    .iter()
                    .map(|&x| gamma_eta * est.lambda * x)
                    .collect();
                let bc: Vec<f64> = (0..k)
                    .map(|j| bca_part[j] + exact_path_part[j] + approx_part[j])
                    .collect();
                let outcome: &AdaptiveOutcome = &est.outcome;
                let stats = BcRunStats {
                    gamma: self.gamma,
                    eta,
                    lambda_hat: exact_part.lambda_hat,
                    vc: vcs[i],
                    eps_inner: cfg.eps / gamma_eta,
                    samples: outcome.samples_used,
                    pilot_samples: outcome.pilot_samples,
                    rejected: probs[i].rejected(),
                    exact_work: *exact_work,
                    converged_early: outcome.converged_early,
                    nmax: outcome.nmax,
                    rounds: outcome.rounds_run,
                };
                BcEstimate {
                    targets: targets.clone(),
                    bc,
                    bca_part,
                    exact_path_part,
                    approx_part,
                    stats,
                }
            })
            .collect())
    }

    /// SaPHyRa_bc-full: ranks every node of the graph (the paper's
    /// whole-network variant used in Figs. 3-7).
    pub fn rank_full(
        &self,
        graph: &Graph,
        cfg: &SaphyraBcConfig,
        rng: &mut dyn RngCore,
    ) -> BcEstimate {
        let all: Vec<NodeId> = graph.nodes().collect();
        self.rank_subset(graph, &all, cfg, rng)
    }
}

/// Borrowing convenience wrapper pairing a graph with its
/// [`BcDecomposition`]. Building the index is O(m + n); it can then rank
/// any number of subsets. Derefs to the decomposition, so all its fields
/// (`bic`, `outreach`, `gamma`, ...) read through transparently.
#[derive(Debug)]
pub struct BcIndex<'g> {
    /// The underlying graph.
    pub graph: &'g Graph,
    /// The owned decomposition.
    pub dec: BcDecomposition,
}

impl<'g> std::ops::Deref for BcIndex<'g> {
    type Target = BcDecomposition;
    fn deref(&self) -> &BcDecomposition {
        &self.dec
    }
}

impl<'g> BcIndex<'g> {
    /// Builds the index.
    pub fn new(graph: &'g Graph) -> Self {
        BcIndex {
            graph,
            dec: BcDecomposition::compute(graph),
        }
    }

    /// Ranks the given target subset (SaPHyRa_bc). Targets must be unique
    /// node ids; the output is aligned with the input order.
    pub fn rank_subset(
        &self,
        targets: &[NodeId],
        cfg: &SaphyraBcConfig,
        rng: &mut dyn RngCore,
    ) -> BcEstimate {
        self.dec.rank_subset(self.graph, targets, cfg, rng)
    }

    /// SaPHyRa_bc-full: ranks every node of the graph (the paper's
    /// whole-network variant used in Figs. 3-7).
    pub fn rank_full(&self, cfg: &SaphyraBcConfig, rng: &mut dyn RngCore) -> BcEstimate {
        self.dec.rank_full(self.graph, cfg, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use saphyra_graph::brandes::betweenness_exact;
    use saphyra_graph::fixtures;

    fn check_accuracy(g: &Graph, targets: &[NodeId], eps: f64, seed: u64) {
        let truth = betweenness_exact(g);
        let index = BcIndex::new(g);
        let mut rng = StdRng::seed_from_u64(seed);
        let est = index.rank_subset(targets, &SaphyraBcConfig::new(eps, 0.1), &mut rng);
        for (i, &v) in targets.iter().enumerate() {
            let err = (est.bc[i] - truth[v as usize]).abs();
            assert!(
                err < eps,
                "node {v}: est {} truth {} err {err} (eps {eps})",
                est.bc[i],
                truth[v as usize]
            );
        }
    }

    #[test]
    fn accuracy_on_fixtures() {
        check_accuracy(
            &fixtures::paper_fig2(),
            &(0..11u32).collect::<Vec<_>>(),
            0.05,
            1,
        );
        check_accuracy(&fixtures::grid_graph(6, 6), &[7, 14, 21, 28, 35], 0.05, 2);
        check_accuracy(
            &fixtures::lollipop_graph(6, 6),
            &(0..12u32).collect::<Vec<_>>(),
            0.05,
            3,
        );
        check_accuracy(&fixtures::cycle_graph(20), &[0, 5, 10], 0.05, 4);
    }

    #[test]
    fn accuracy_on_random_graph() {
        let mut grng = StdRng::seed_from_u64(10);
        let n = 40;
        let mut b = saphyra_graph::GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if grng.gen::<f64>() < 0.1 {
                    b.push(u, v);
                }
            }
        }
        let g = b.build().unwrap();
        let targets: Vec<u32> = (0..n as u32).step_by(3).collect();
        check_accuracy(&g, &targets, 0.06, 11);
    }

    #[test]
    fn no_false_zeros_lemma19() {
        // Every positive-betweenness target must receive a positive
        // estimate — the property ABRA/KADABRA lack (Fig. 6).
        let mut grng = StdRng::seed_from_u64(20);
        for round in 0..5 {
            let n = 30;
            let mut b = saphyra_graph::GraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if grng.gen::<f64>() < 0.12 {
                        b.push(u, v);
                    }
                }
            }
            let g = b.build().unwrap();
            let truth = betweenness_exact(&g);
            let index = BcIndex::new(&g);
            let targets: Vec<u32> = g.nodes().collect();
            let mut rng = StdRng::seed_from_u64(round);
            // Large eps: the sampled part may see nothing, the exact part
            // must still be positive.
            let est = index.rank_subset(&targets, &SaphyraBcConfig::new(0.3, 0.1), &mut rng);
            for (i, &v) in targets.iter().enumerate() {
                if truth[v as usize] > 0.0 {
                    assert!(
                        est.bc[i] > 0.0,
                        "round {round}: node {v} has bc {} but estimate 0",
                        truth[v as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn tree_betweenness_is_pure_bca() {
        // In a tree the ISP space has only length-1 paths: the sampled and
        // 2-hop parts are zero and b̃c = bcₐ = bc exactly.
        let g = fixtures::binary_tree(4);
        let truth = betweenness_exact(&g);
        let index = BcIndex::new(&g);
        let targets: Vec<u32> = g.nodes().collect();
        let mut rng = StdRng::seed_from_u64(5);
        let est = index.rank_subset(&targets, &SaphyraBcConfig::new(0.05, 0.1), &mut rng);
        for (i, &v) in targets.iter().enumerate() {
            assert!(
                (est.bc[i] - truth[v as usize]).abs() < 1e-12,
                "node {v}: {} vs {}",
                est.bc[i],
                truth[v as usize]
            );
            assert_eq!(est.exact_path_part[i], 0.0);
            assert_eq!(est.approx_part[i], 0.0);
        }
    }

    #[test]
    fn isolated_targets_get_zero() {
        let g = fixtures::disconnected_mix();
        let index = BcIndex::new(&g);
        let mut rng = StdRng::seed_from_u64(6);
        let est = index.rank_subset(&[5], &SaphyraBcConfig::new(0.1, 0.1), &mut rng);
        assert_eq!(est.bc, vec![0.0]);
        assert_eq!(est.stats.samples, 0);
    }

    #[test]
    fn full_ranking_correlates_with_truth() {
        let g = fixtures::grid_graph(7, 5);
        let truth = betweenness_exact(&g);
        let index = BcIndex::new(&g);
        let mut rng = StdRng::seed_from_u64(8);
        let est = index.rank_full(&SaphyraBcConfig::new(0.02, 0.1), &mut rng);
        let rho = saphyra_stats::spearman_vs_truth(&est.bc, &truth);
        assert!(rho > 0.9, "rho = {rho}");
    }

    #[test]
    fn ranking_output_is_a_permutation() {
        let g = fixtures::grid_graph(5, 5);
        let index = BcIndex::new(&g);
        let targets: Vec<u32> = vec![2, 7, 11, 13, 21];
        let mut rng = StdRng::seed_from_u64(9);
        let est = index.rank_subset(&targets, &SaphyraBcConfig::new(0.1, 0.1), &mut rng);
        let mut ranking = est.ranking();
        assert_eq!(ranking.len(), 5);
        ranking.sort_unstable();
        assert_eq!(ranking, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn top_k_and_lookup() {
        let g = fixtures::grid_graph(5, 5);
        let index = BcIndex::new(&g);
        let targets: Vec<u32> = vec![0, 12, 24]; // corners vs center
        let mut rng = StdRng::seed_from_u64(10);
        let est = index.rank_subset(&targets, &SaphyraBcConfig::new(0.05, 0.1), &mut rng);
        let top = est.top_k(2);
        assert_eq!(top.len(), 2);
        // The grid center dominates both corners.
        assert_eq!(top[0].0, 12);
        assert!(top[0].1 >= top[1].1);
        assert_eq!(est.bc_of(12), Some(top[0].1));
        assert_eq!(est.bc_of(99), None);
        // top_k larger than the target set is clamped.
        assert_eq!(est.top_k(10).len(), 3);
    }

    #[test]
    fn decomposition_parts_sum_to_estimate() {
        let g = fixtures::lollipop_graph(5, 4);
        let index = BcIndex::new(&g);
        let targets: Vec<u32> = g.nodes().collect();
        let mut rng = StdRng::seed_from_u64(12);
        let est = index.rank_subset(&targets, &SaphyraBcConfig::new(0.05, 0.1), &mut rng);
        for i in 0..targets.len() {
            let sum = est.bca_part[i] + est.exact_path_part[i] + est.approx_part[i];
            assert!((sum - est.bc[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn ablation_without_exact_subspace_is_still_accurate() {
        let g = fixtures::grid_graph(6, 5);
        let truth = betweenness_exact(&g);
        let index = BcIndex::new(&g);
        let targets: Vec<u32> = vec![7, 8, 14, 21];
        let mut rng = StdRng::seed_from_u64(31);
        let cfg = SaphyraBcConfig::new(0.05, 0.1).without_exact_subspace();
        let est = index.rank_subset(&targets, &cfg, &mut rng);
        assert_eq!(est.stats.lambda_hat, 0.0);
        assert_eq!(est.stats.exact_work, 0);
        for (i, &v) in targets.iter().enumerate() {
            assert!((est.bc[i] - truth[v as usize]).abs() < 0.05);
            assert_eq!(est.exact_path_part[i], 0.0);
        }
    }

    #[test]
    fn ablation_fixed_budget_draws_nmax() {
        let g = fixtures::grid_graph(6, 5);
        let index = BcIndex::new(&g);
        let targets: Vec<u32> = vec![7, 14, 21];
        let mut rng = StdRng::seed_from_u64(32);
        let cfg = SaphyraBcConfig::new(0.1, 0.1).with_fixed_budget();
        let est = index.rank_subset(&targets, &cfg, &mut rng);
        assert!(!est.stats.converged_early);
        assert_eq!(est.stats.samples, est.stats.nmax);
        assert_eq!(est.stats.pilot_samples, 0);
        // Adaptive run on the same instance uses no more samples.
        let mut rng = StdRng::seed_from_u64(32);
        let adaptive = index.rank_subset(&targets, &SaphyraBcConfig::new(0.1, 0.1), &mut rng);
        assert!(adaptive.stats.samples <= est.stats.samples);
    }

    #[test]
    fn stats_are_populated() {
        let g = fixtures::grid_graph(6, 6);
        let index = BcIndex::new(&g);
        let targets: Vec<u32> = vec![14, 15, 20, 21];
        let mut rng = StdRng::seed_from_u64(13);
        let est = index.rank_subset(&targets, &SaphyraBcConfig::new(0.05, 0.1), &mut rng);
        assert!(est.stats.gamma > 0.0);
        assert!(est.stats.eta > 0.0 && est.stats.eta <= 1.0);
        assert!(est.stats.samples > 0);
        assert!(est.stats.exact_work > 0);
        assert!(est.stats.vc.vc_subset >= 1);
    }
}
