//! The personalized intra-component shortest-path (PISP) distribution
//! (paper §IV-A, Eq. 22-24) and its multistage sampling tables.
//!
//! Given targets `A`, the PISP space restricts the ISP space to the
//! bicomponents `I(A)` that contain at least one target. A shortest path
//! `p` from `s` to `t` inside `Cᵢ` has probability
//! `Pr[x = p] = q_st / (σ_st · γ · η)` with `q_st = rᵢ(s)·rᵢ(t)/(n(n−1))`.
//! Sampling factorizes (Algorithm 2): pick `Cᵢ ∝ Wᵢ`, pick `s ∝
//! rᵢ(s)(n_c − rᵢ(s))`, pick `t ≠ s ∝ rᵢ(t)`, pick a uniform shortest
//! path — each stage a binary search over a prefix-sum table.

use rand::Rng;
use saphyra_graph::{Bicomps, Graph, NodeId};

use super::outreach::Outreach;

/// Sampling tables for the PISP distribution of one target set.
#[derive(Debug, Clone)]
pub struct Pisp {
    /// The component ids of `I(A)`, ascending.
    pub members: Vec<u32>,
    /// `η` (Eq. 23): PISP mass relative to the ISP space.
    pub eta: f64,
    /// Cumulative `W_b` over `members`.
    cum_weight: Vec<f64>,
    /// Per member: cumulative `r(s)·(n_c − r(s))` over `nodes_of(b)`.
    pair_prefix: Vec<Vec<f64>>,
    /// Per member: cumulative `r(t)` over `nodes_of(b)`.
    r_prefix: Vec<Vec<f64>>,
}

impl Pisp {
    /// Builds the tables for target set `targets` (any order, unique).
    pub fn new(bic: &Bicomps, outreach: &Outreach, targets: &[NodeId]) -> Self {
        // I(A): union of memberships of the targets.
        let mut members: Vec<u32> = targets
            .iter()
            .flat_map(|&v| bic.bicomps_of(v).iter().copied())
            .collect();
        members.sort_unstable();
        members.dedup();

        let mut cum_weight = Vec::with_capacity(members.len());
        let mut pair_prefix = Vec::with_capacity(members.len());
        let mut r_prefix = Vec::with_capacity(members.len());
        let mut acc = 0.0f64;
        let mut in_mass = 0.0f64;
        for &b in &members {
            let rs = outreach.r_slice(bic, b);
            let n_c: f64 = rs.iter().map(|&x| x as f64).sum();
            let mut pair = Vec::with_capacity(rs.len());
            let mut rsum = Vec::with_capacity(rs.len());
            let (mut p_acc, mut r_acc) = (0.0f64, 0.0f64);
            for &r in rs {
                p_acc += r as f64 * (n_c - r as f64);
                r_acc += r as f64;
                pair.push(p_acc);
                rsum.push(r_acc);
            }
            in_mass += outreach.pair_weight[b as usize];
            acc += outreach.pair_weight[b as usize];
            cum_weight.push(acc);
            pair_prefix.push(pair);
            r_prefix.push(rsum);
        }
        let eta = if outreach.total_weight > 0.0 {
            in_mass / outreach.total_weight
        } else {
            0.0
        };
        Pisp {
            members,
            eta,
            cum_weight,
            pair_prefix,
            r_prefix,
        }
    }

    /// Total unnormalized weight of the PISP space (`= γη · n(n−1)`).
    pub fn total_weight(&self) -> f64 {
        *self.cum_weight.last().unwrap_or(&0.0)
    }

    /// Whether the PISP space is empty (no target touches any edge).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty() || self.total_weight() <= 0.0
    }

    /// Stages 1-3 of Algorithm 2: samples `(component, s, t)` with
    /// `Pr ∝ r(s)·r(t)` over ordered intra-component pairs of `I(A)`.
    pub fn sample_pair<R: Rng + ?Sized>(
        &self,
        bic: &Bicomps,
        rng: &mut R,
    ) -> (u32, NodeId, NodeId) {
        debug_assert!(!self.is_empty());
        // Stage 1: component ∝ W_b.
        let total = self.total_weight();
        let x = rng.gen::<f64>() * total;
        let mi = self
            .cum_weight
            .partition_point(|&c| c <= x)
            .min(self.members.len() - 1);
        let b = self.members[mi];
        let nodes = bic.nodes_of(b);

        // Stage 2: source ∝ r(s)·(n_c − r(s)).
        let pair = &self.pair_prefix[mi];
        let w = *pair.last().expect("nonempty component");
        let x = rng.gen::<f64>() * w;
        let si = pair.partition_point(|&c| c <= x).min(nodes.len() - 1);
        let s = nodes[si];

        // Stage 3: target ∝ r(t), excluding s: skip s's own r-mass.
        let rp = &self.r_prefix[mi];
        let n_c = *rp.last().expect("nonempty component");
        let r_s = rp[si] - if si == 0 { 0.0 } else { rp[si - 1] };
        let before_s = rp[si] - r_s;
        let x = rng.gen::<f64>() * (n_c - r_s);
        let ti = if x < before_s {
            rp.partition_point(|&c| c <= x).min(si.saturating_sub(1))
        } else {
            let shifted = x + r_s;
            rp.partition_point(|&c| c <= shifted)
                .max(si + 1)
                .min(nodes.len() - 1)
        };
        debug_assert_ne!(ti, si);
        (b, s, nodes[ti])
    }
}

/// Exact enumeration of the PISP *pair* probabilities (all ordered
/// intra-component pairs of `I(A)` with their mass `q_st / (γη)`), for
/// validating the sampler on small graphs. O(Σ |C_b|²).
pub fn enumerate_pair_probs(
    g: &Graph,
    bic: &Bicomps,
    outreach: &Outreach,
    pisp: &Pisp,
) -> Vec<(u32, NodeId, NodeId, f64)> {
    let n = g.num_nodes() as f64;
    let gamma_eta = pisp.total_weight() / (n * (n - 1.0));
    let mut out = Vec::new();
    for &b in &pisp.members {
        let nodes = bic.nodes_of(b);
        let rs = outreach.r_slice(bic, b);
        for (i, &s) in nodes.iter().enumerate() {
            for (j, &t) in nodes.iter().enumerate() {
                if i == j {
                    continue;
                }
                let q = rs[i] as f64 * rs[j] as f64 / (n * (n - 1.0));
                out.push((b, s, t, q / gamma_eta));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saphyra_graph::fixtures::{self, fig2::*};
    use saphyra_graph::BlockCutTree;

    fn setup(g: &Graph) -> (Bicomps, Outreach) {
        let bic = Bicomps::compute(g);
        let tree = BlockCutTree::compute(&bic);
        let or = Outreach::compute(&bic, &tree);
        (bic, or)
    }

    #[test]
    fn members_are_target_bicomps() {
        let g = fixtures::paper_fig2();
        let (bic, or) = setup(&g);
        // Target {g}: only the triangle c-g-h.
        let p = Pisp::new(&bic, &or, &[G]);
        assert_eq!(p.members.len(), 1);
        assert_eq!(bic.nodes_of(p.members[0]), &[C, G, H]);
        // Target {d}: d is a cutpoint in C1, C3, C5 -> three members.
        let p = Pisp::new(&bic, &or, &[D]);
        assert_eq!(p.members.len(), 3);
        // Full network: everything.
        let all: Vec<u32> = g.nodes().collect();
        let p = Pisp::new(&bic, &or, &all);
        assert_eq!(p.members.len(), bic.num_bicomps);
        assert!((p.eta - 1.0).abs() < 1e-12);
    }

    #[test]
    fn eta_fraction_matches_weights() {
        let g = fixtures::two_triangles_bridge();
        let (bic, or) = setup(&g);
        // Target node 0: only in the first triangle.
        let p = Pisp::new(&bic, &or, &[0]);
        let b = bic.share_bicomp(0, 1).unwrap();
        let expect = or.pair_weight[b as usize] / or.total_weight;
        assert!((p.eta - expect).abs() < 1e-12);
        assert!(p.eta < 1.0);
    }

    #[test]
    fn pair_probs_sum_to_one() {
        let g = fixtures::paper_fig2();
        let (bic, or) = setup(&g);
        for targets in [vec![A], vec![D], vec![G, J], (0..11u32).collect::<Vec<_>>()] {
            let p = Pisp::new(&bic, &or, &targets);
            let probs = enumerate_pair_probs(&g, &bic, &or, &p);
            // Σ over pairs of σ_st · Pr[path] = Σ pair masses = 1.
            let total: f64 = probs.iter().map(|&(_, _, _, q)| q).sum();
            assert!((total - 1.0).abs() < 1e-9, "targets {targets:?}: {total}");
        }
    }

    #[test]
    fn sampler_matches_enumeration() {
        let g = fixtures::paper_fig2();
        let (bic, or) = setup(&g);
        let p = Pisp::new(&bic, &or, &[D, G]);
        let probs = enumerate_pair_probs(&g, &bic, &or, &p);
        let mut expect: std::collections::BTreeMap<(u32, u32, u32), f64> =
            std::collections::BTreeMap::new();
        for (b, s, t, q) in probs {
            *expect.entry((b, s, t)).or_insert(0.0) += q;
        }
        let mut rng = StdRng::seed_from_u64(17);
        let trials = 200_000usize;
        let mut counts: std::collections::BTreeMap<(u32, u32, u32), usize> =
            std::collections::BTreeMap::new();
        for _ in 0..trials {
            let (b, s, t) = p.sample_pair(&bic, &mut rng);
            assert_ne!(s, t);
            *counts.entry((b, s, t)).or_insert(0) += 1;
        }
        for (key, &q) in &expect {
            let got = *counts.get(key).unwrap_or(&0) as f64 / trials as f64;
            assert!(
                (got - q).abs() < 0.01 + 0.15 * q,
                "pair {key:?}: got {got}, expect {q}"
            );
        }
        // No pair outside the enumeration was sampled.
        for key in counts.keys() {
            assert!(expect.contains_key(key), "unexpected pair {key:?}");
        }
    }

    #[test]
    fn empty_when_targets_isolated() {
        let g = fixtures::disconnected_mix();
        let (bic, or) = setup(&g);
        // Node 5 is isolated: no bicomponents.
        let p = Pisp::new(&bic, &or, &[5]);
        assert!(p.is_empty());
    }

    #[test]
    fn stage3_never_returns_source() {
        let g = fixtures::lollipop_graph(4, 3);
        let (bic, or) = setup(&g);
        let all: Vec<u32> = g.nodes().collect();
        let p = Pisp::new(&bic, &or, &all);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5000 {
            let (_, s, t) = p.sample_pair(&bic, &mut rng);
            assert_ne!(s, t);
        }
    }
}
