//! Personalized VC-dimension bounds (paper Lemma 5, Corollary 22, Lemma 23,
//! Table I).
//!
//! The hypothesis class `H_A = {h_v}` over shortest-path samples shatters at
//! most `⌊log₂ π_max⌋ + 1` points, where `π_max` is the largest number of
//! targets interior to one sample (Lemma 5). For the PISP space this is
//! bounded by `BS(A)`, which is in turn bounded per component by
//! `min(VD(Cᵢ) − 1, VD(A ∩ Cᵢ) + 1, |A ∩ Cᵢ|)` (Eq. 34). Diameters are
//! replaced by their `2·ecc` upper bounds (§IV-C), so every reported VC
//! bound is sound.

use saphyra_graph::bfs::BfsWorkspace;
use saphyra_graph::{Bicomps, Graph, NodeId};

/// The three bounds of Table I, all computed from one decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VcBoundReport {
    /// Upper bound on the graph diameter `VD(V)` (max over components of
    /// `2·ecc`).
    pub vd_upper: u32,
    /// Upper bound on the maximum bicomponent diameter `BD(V)`.
    pub bd_upper: u32,
    /// Upper bound on `BS(A)` (Eq. 34).
    pub bs_upper: u32,
    /// Riondato–Kornaropoulos: `⌊log₂(VD(V) − 1)⌋ + 1`.
    pub vc_riondato: usize,
    /// SaPHyRa on the full network: `⌊log₂(BD(V) − 1)⌋ + 1`.
    pub vc_full: usize,
    /// SaPHyRa on the subset: `⌊log₂ BS(A)⌋ + 1` (Corollary 22).
    pub vc_subset: usize,
}

/// `⌊log₂ x⌋ + 1`, clamped to ≥ 1 (x = 0 or 1 gives 1).
pub fn log2_floor_plus1(x: u32) -> usize {
    if x <= 1 {
        1
    } else {
        (31 - x.leading_zeros()) as usize + 1
    }
}

/// The ℓ-hop-neighborhood bound of Table I: targets within `l` hops of one
/// node give `VC ≤ ⌊log₂(2l + 1)⌋ + 1`.
pub fn vc_lhop(l: u32) -> usize {
    log2_floor_plus1(2 * l + 1)
}

/// Target-independent precomputation behind [`vc_bounds`]: the `VD(V)`
/// upper bound and the per-bicomponent diameter upper bounds. Building it
/// costs one BFS per connected component plus one filtered BFS per
/// bicomponent; ranking services build it once per graph and reuse it for
/// every request (only the target-dependent `BS(A)` part remains per-call).
#[derive(Debug, Clone)]
pub struct VcPrecomp {
    /// Upper bound on the graph diameter `VD(V)`.
    pub vd_upper: u32,
    /// Upper bound on the maximum bicomponent diameter `BD(V)`.
    pub bd_upper: u32,
    /// Per-bicomponent diameter upper bounds (`2·ecc`, 1 for 2-node
    /// blocks), indexed by bicomp id.
    pub bicomp_diam_upper: Vec<u32>,
}

impl VcPrecomp {
    /// Computes the target-independent bounds for one graph.
    pub fn compute(g: &Graph, bic: &Bicomps) -> Self {
        let n = g.num_nodes();
        let mut ws = BfsWorkspace::new(n);

        // VD(V) upper bound: 2·ecc from one seed per connected component.
        let mut seen = vec![false; n];
        let mut vd_upper = 0u32;
        for v in g.nodes() {
            if seen[v as usize] || g.degree(v) == 0 {
                continue;
            }
            ws.run(g, v);
            for &u in &ws.order {
                seen[u as usize] = true;
            }
            vd_upper = vd_upper.max(2 * ws.eccentricity());
        }

        // Per-component diameter upper bounds; trivially 1 for 2-node
        // blocks.
        let mut bicomp_diam_upper = Vec::with_capacity(bic.num_bicomps);
        let mut bd_upper = 0u32;
        for b in 0..bic.num_bicomps as u32 {
            let nodes = bic.nodes_of(b);
            let d = if nodes.len() == 2 {
                1
            } else {
                ws.run_counting(g, nodes[0], None, |slot| bic.bicomp_of_slot(g, slot) == b);
                2 * ws.eccentricity()
            };
            bicomp_diam_upper.push(d);
            bd_upper = bd_upper.max(d);
        }

        VcPrecomp {
            vd_upper,
            bd_upper,
            bicomp_diam_upper,
        }
    }

    /// Rebuilds the bounds after an edge delta, re-running the per-bicomp
    /// filtered BFS — the dominant cost of [`VcPrecomp::compute`] — only
    /// for components the delta dirtied. `old_to_new` maps surviving old
    /// bicomp ids to their ids in `bic`
    /// ([`saphyra_graph::delta::UNMAPPED`] for dirtied ones); a spliced
    /// bound is exactly what [`VcPrecomp::compute`] would produce, the
    /// component's structure being unchanged. The `VD(V)` sweep (one BFS
    /// per connected component) is cheap and re-runs in full.
    pub fn refresh(g: &Graph, bic: &Bicomps, old: &VcPrecomp, old_to_new: &[u32]) -> Self {
        let n = g.num_nodes();
        let mut ws = BfsWorkspace::new(n);

        let mut seen = vec![false; n];
        let mut vd_upper = 0u32;
        for v in g.nodes() {
            if seen[v as usize] || g.degree(v) == 0 {
                continue;
            }
            ws.run(g, v);
            for &u in &ws.order {
                seen[u as usize] = true;
            }
            vd_upper = vd_upper.max(2 * ws.eccentricity());
        }

        // Carry untouched components' bounds through the renumbering; every
        // diameter bound is < 2n, so u32::MAX doubles as "recompute".
        let mut carried = vec![u32::MAX; bic.num_bicomps];
        for (ob, &nb) in old_to_new.iter().enumerate() {
            if nb != u32::MAX {
                carried[nb as usize] = old.bicomp_diam_upper[ob];
            }
        }
        let mut bicomp_diam_upper = Vec::with_capacity(bic.num_bicomps);
        let mut bd_upper = 0u32;
        for b in 0..bic.num_bicomps as u32 {
            let d = match carried[b as usize] {
                u32::MAX => {
                    let nodes = bic.nodes_of(b);
                    if nodes.len() == 2 {
                        1
                    } else {
                        ws.run_counting(g, nodes[0], None, |slot| bic.bicomp_of_slot(g, slot) == b);
                        2 * ws.eccentricity()
                    }
                }
                carried => carried,
            };
            bicomp_diam_upper.push(d);
            bd_upper = bd_upper.max(d);
        }
        VcPrecomp {
            vd_upper,
            bd_upper,
            bicomp_diam_upper,
        }
    }
}

/// Computes all Table I bounds for target set `targets`.
pub fn vc_bounds(g: &Graph, bic: &Bicomps, targets: &[NodeId]) -> VcBoundReport {
    vc_bounds_from(&VcPrecomp::compute(g, bic), g, bic, targets)
}

/// Computes the Table I bounds for `targets` reusing a precomputed
/// [`VcPrecomp`] — only the target-dependent Eq. 34 part is evaluated.
pub fn vc_bounds_from(
    pre: &VcPrecomp,
    g: &Graph,
    bic: &Bicomps,
    targets: &[NodeId],
) -> VcBoundReport {
    let n = g.num_nodes();
    let mut ws = BfsWorkspace::new(n);
    let vd_upper = pre.vd_upper;
    let bd_upper = pre.bd_upper;

    // BS(A) via Eq. 34, per component of I(A).
    // Group targets by component membership.
    let mut pairs: Vec<(u32, NodeId)> = Vec::new();
    for &v in targets {
        for &b in bic.bicomps_of(v) {
            pairs.push((b, v));
        }
    }
    pairs.sort_unstable();
    let mut bs_upper = 0u32;
    let mut i = 0usize;
    while i < pairs.len() {
        let b = pairs[i].0;
        let mut j = i;
        while j < pairs.len() && pairs[j].0 == b {
            j += 1;
        }
        let members = &pairs[i..j];
        let count = members.len() as u32;
        // Subset diameter upper bound within the component: one filtered
        // BFS from the first member (intra-component distances are global
        // distances for co-component nodes).
        let seed = members[0].1;
        ws.run_counting(g, seed, None, |slot| bic.bicomp_of_slot(g, slot) == b);
        let sd = members
            .iter()
            .map(|&(_, v)| ws.dist(v))
            .filter(|&d| d != saphyra_graph::bfs::INFINITY)
            .max()
            .unwrap_or(0);
        let vd_ci = pre.bicomp_diam_upper[b as usize];
        let bound = (vd_ci.saturating_sub(1)).min(2 * sd + 1).min(count);
        bs_upper = bs_upper.max(bound);
        i = j;
    }

    VcBoundReport {
        vd_upper,
        bd_upper,
        bs_upper,
        vc_riondato: log2_floor_plus1(vd_upper.saturating_sub(1)),
        vc_full: log2_floor_plus1(bd_upper.saturating_sub(1)),
        vc_subset: log2_floor_plus1(bs_upper),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saphyra_graph::fixtures;

    fn bounds(g: &Graph, targets: &[NodeId]) -> VcBoundReport {
        let bic = Bicomps::compute(g);
        vc_bounds(g, &bic, targets)
    }

    #[test]
    fn log_helper() {
        assert_eq!(log2_floor_plus1(0), 1);
        assert_eq!(log2_floor_plus1(1), 1);
        assert_eq!(log2_floor_plus1(2), 2);
        assert_eq!(log2_floor_plus1(3), 2);
        assert_eq!(log2_floor_plus1(4), 3);
        assert_eq!(log2_floor_plus1(255), 8);
        assert_eq!(log2_floor_plus1(256), 9);
    }

    #[test]
    fn lhop_bound() {
        assert_eq!(vc_lhop(0), 1);
        assert_eq!(vc_lhop(1), 2); // 2l+1 = 3
        assert_eq!(vc_lhop(2), 3); // 5
        assert_eq!(vc_lhop(7), 4); // 15
    }

    #[test]
    fn path_graph_bicomponents_kill_the_diameter_term() {
        // Path of 32: VD = 31 but every block is an edge (BD = 1).
        let g = fixtures::path_graph(32);
        let all: Vec<u32> = g.nodes().collect();
        let r = bounds(&g, &all);
        assert!(r.vd_upper >= 31);
        assert_eq!(r.bd_upper, 1);
        assert!(r.vc_riondato >= 5);
        assert_eq!(r.vc_full, 1);
        assert_eq!(r.vc_subset, 1);
    }

    #[test]
    fn subset_bound_tightens_with_small_subsets() {
        let g = fixtures::grid_graph(10, 10);
        let all: Vec<u32> = g.nodes().collect();
        let full = bounds(&g, &all);
        let single = bounds(&g, &[55]);
        assert!(single.vc_subset <= full.vc_subset);
        assert_eq!(single.bs_upper, 1); // |A ∩ C| = 1
        assert_eq!(single.vc_subset, 1);
    }

    #[test]
    fn bounds_are_sound_upper_bounds() {
        // bs bound is at least 1 whenever a target has an edge, and the
        // chain vc_subset ≤ vc_full holds when BS ≤ BD − 1.
        for g in [
            fixtures::grid_graph(6, 6),
            fixtures::lollipop_graph(5, 5),
            fixtures::paper_fig2(),
        ] {
            let all: Vec<u32> = g.nodes().collect();
            let r = bounds(&g, &all);
            assert!(r.bs_upper <= r.bd_upper.max(1));
            assert!(r.vc_subset <= r.vc_full.max(r.vc_subset));
            assert!(r.bd_upper <= r.vd_upper.max(1));
        }
    }

    #[test]
    fn empty_targets() {
        let g = fixtures::grid_graph(4, 4);
        let r = bounds(&g, &[]);
        assert_eq!(r.bs_upper, 0);
        assert_eq!(r.vc_subset, 1);
    }

    #[test]
    fn star_graph_everything_is_trivial() {
        let g = fixtures::star_graph(9);
        let all: Vec<u32> = g.nodes().collect();
        let r = bounds(&g, &all);
        assert_eq!(r.bd_upper, 1);
        assert_eq!(r.vc_full, 1);
        // VD(star) = 2 -> riondato log2(1)+1 = 1.
        assert!(r.vc_riondato >= 1);
    }
}
