//! Bicomponent-accelerated *exact* betweenness ("shattering", Sariyüce et
//! al. \[22\] — the inspiration the paper credits for its bi-component
//! sampling).
//!
//! The ISP identity (Lemma 13) is not just a sampling device: summing the
//! weighted pair dependencies exactly gives exact betweenness,
//!
//! `bc(v) = bcₐ(v) + 1/(n(n−1)) Σ_b Σ_{s≠t∈C_b} r_b(s)·r_b(t)·σ_st(v)/σ_st`,
//!
//! where each inner sum runs entirely inside one biconnected component. A
//! weighted Brandes pass per component — source weight `r(s)`, target
//! weights `r(t)`, accumulation
//! `δ(v) = Σ_{w ∈ succ(v)} σ(v)/σ(w) · (r(w) + δ(w))` — computes it in
//! `O(Σ_b |C_b| · m_b)`, which collapses to near-linear on graphs that
//! shatter into small components (trees, road networks with spurs), versus
//! Brandes' `O(n·m)`.
//!
//! Besides being a faster oracle, this module is the strongest whole-
//! pipeline validator in the repository: it reuses the decomposition,
//! out-reach and bcₐ machinery and must agree with textbook Brandes to
//! floating-point accuracy on every graph.

use saphyra_graph::bfs::BfsWorkspace;
use saphyra_graph::Graph;

use super::ranker::BcIndex;

impl BcIndex<'_> {
    /// Exact betweenness for **all** nodes via per-bicomponent weighted
    /// Brandes (serial). Agrees with
    /// [`saphyra_graph::brandes::betweenness_exact`].
    pub fn exact_betweenness_shattered(&self) -> Vec<f64> {
        let g = self.graph;
        let n = g.num_nodes();
        let mut bc = self.bca.clone();
        if n < 2 {
            return bc;
        }
        let norm = 1.0 / (n as f64 * (n as f64 - 1.0));
        let mut ws = BfsWorkspace::new(n);
        let mut delta = vec![0.0f64; n];
        let mut weight = vec![0.0f64; n];

        for b in 0..self.bic.num_bicomps as u32 {
            let nodes = self.bic.nodes_of(b);
            let rs = self.outreach.r_slice(&self.bic, b);
            // Stage r(t) weights for the component's nodes.
            for (&v, &r) in nodes.iter().zip(rs) {
                weight[v as usize] = r as f64;
            }
            for (&s, &r_s) in nodes.iter().zip(rs) {
                accumulate_weighted_source(
                    g, s, r_s as f64, &self.bic, b, &mut ws, &mut delta, &weight, &mut bc, norm,
                );
            }
            for &v in nodes {
                weight[v as usize] = 0.0;
            }
        }
        bc
    }
}

/// One weighted single-source accumulation restricted to component `b`:
/// adds `norm · r(s) · Σ_t r(t)·σ_st(v)/σ_st` to `bc[v]` for every interior
/// `v`.
#[allow(clippy::too_many_arguments)]
fn accumulate_weighted_source(
    g: &Graph,
    s: u32,
    r_s: f64,
    bic: &saphyra_graph::Bicomps,
    b: u32,
    ws: &mut BfsWorkspace,
    delta: &mut [f64],
    weight: &[f64],
    bc: &mut [f64],
    norm: f64,
) {
    ws.run_counting(g, s, None, |slot| bic.bicomp_of_slot(g, slot) == b);
    for i in (0..ws.order.len()).rev() {
        let v = ws.order[i];
        let dv = ws.dist(v);
        if dv == 0 {
            break; // the source is first in visit order
        }
        // (r(v) + δ(v)) flows to predecessors proportionally to σ.
        let coeff = (weight[v as usize] + delta[v as usize]) / ws.sigma(v);
        for slot in g.slot_range(v) {
            if bic.bicomp_of_slot(g, slot) != b {
                continue;
            }
            let w = g.neighbor_at(slot);
            if ws.visited(w) && ws.dist(w) + 1 == dv {
                delta[w as usize] += ws.sigma(w) * coeff;
            }
        }
        bc[v as usize] += r_s * delta[v as usize] * norm;
    }
    for &v in &ws.order {
        delta[v as usize] = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use saphyra_graph::brandes::betweenness_exact;
    use saphyra_graph::{fixtures, GraphBuilder};

    fn check(g: &Graph) {
        let index = BcIndex::new(g);
        let fast = index.exact_betweenness_shattered();
        let slow = betweenness_exact(g);
        for v in g.nodes() {
            assert!(
                (fast[v as usize] - slow[v as usize]).abs() < 1e-10,
                "node {v}: shattered {} vs brandes {}",
                fast[v as usize],
                slow[v as usize]
            );
        }
    }

    #[test]
    fn matches_brandes_on_fixtures() {
        for g in [
            fixtures::paper_fig2(),
            fixtures::path_graph(9),
            fixtures::cycle_graph(8),
            fixtures::grid_graph(5, 4),
            fixtures::lollipop_graph(5, 5),
            fixtures::star_graph(9),
            fixtures::binary_tree(4),
            fixtures::two_triangles_bridge(),
            fixtures::disconnected_mix(),
            fixtures::complete_graph(6),
        ] {
            check(&g);
        }
    }

    #[test]
    fn matches_brandes_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(41);
        for round in 0..10 {
            let n = 15 + round;
            let mut b = GraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen::<f64>() < 0.12 {
                        b.push(u, v);
                    }
                }
            }
            check(&b.build().unwrap());
        }
    }

    #[test]
    fn matches_brandes_on_generated_networks() {
        use saphyra_gen::datasets::{SimNetwork, SizeClass};
        for net in [SimNetwork::Flickr, SimNetwork::UsaRoad] {
            let g = net.build(SizeClass::Tiny, 9);
            check(&g);
        }
    }

    #[test]
    fn shattering_wins_on_trees() {
        // On a tree the shattered pass does O(n) work per block of size 2;
        // just verify exactness (the perf claim is bench territory).
        let g = fixtures::binary_tree(7);
        check(&g);
    }
}
