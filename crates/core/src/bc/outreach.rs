//! Out-reach sets, pair weights, γ and the cutpoint correction bcₐ
//! (paper §IV-A).
//!
//! For a node `v` in bicomponent `Cᵢ`, the out-reach `rᵢ(v)` counts the
//! nodes reachable from `v` without entering `Cᵢ` (including `v`). Out-reach
//! drives everything in the ISP space:
//!
//! * an intra-component pair `(s, t)` in `Cᵢ` carries sampling weight
//!   `q_st = rᵢ(s)·rᵢ(t) / (n(n−1))` — the number of original node pairs
//!   whose shortest paths break into an `s → t` piece (Lemmas 11-12);
//! * the ISP normalizer is `γ = Σᵢ Σ_{s∈Cᵢ} rᵢ(s)(n_c − rᵢ(s)) / (n(n−1))`
//!   (Eq. 19, with the component size `n_c` replacing `n` to stay sound on
//!   disconnected inputs — DESIGN.md §2);
//! * a cutpoint `v` is a *break point* of the pairs routed across it:
//!   `bcₐ(v) = Σ_{i: v∈Cᵢ} |Tᵢ(v)|·(n−1_c−|Tᵢ(v)|) / (n(n−1))` (Eq. 21;
//!   we implement the full sum over incident components, see the erratum
//!   note in DESIGN.md).

use saphyra_graph::{Bicomps, BlockCutTree, Graph, NodeId};

/// Out-reach values and per-component pair weights.
#[derive(Debug, Clone)]
pub struct Outreach {
    /// `rᵢ(v)` aligned with `Bicomps::bicomp_nodes`.
    pub r: Vec<u32>,
    /// `W_b = Σ_{s∈C_b} r_b(s)·(n_c − r_b(s))` per component (unnormalized;
    /// `γ = Σ_b W_b / (n(n−1))`).
    pub pair_weight: Vec<f64>,
    /// `Σ_b W_b`.
    pub total_weight: f64,
}

impl Outreach {
    /// Computes out-reach for every (component, member) incidence.
    pub fn compute(bic: &Bicomps, tree: &BlockCutTree) -> Self {
        let nb = bic.num_bicomps;
        let mut r = vec![0u32; bic.bicomp_nodes.len()];
        let mut pair_weight = vec![0.0f64; nb];
        let mut total_weight = 0.0f64;
        for b in 0..nb as u32 {
            let n_c = tree.comp_total_of_bicomp[b as usize] as f64;
            let range =
                bic.bicomp_node_offsets[b as usize]..bic.bicomp_node_offsets[b as usize + 1];
            let mut w = 0.0f64;
            for idx in range {
                let v = bic.bicomp_nodes[idx];
                let rv = if bic.is_cutpoint[v as usize] {
                    let t = tree
                        .branch_weight(v, b)
                        .expect("cutpoint has a branch in its own component");
                    tree.comp_total_of_bicomp[b as usize] - t
                } else {
                    1
                };
                r[idx] = rv;
                w += rv as f64 * (n_c - rv as f64);
            }
            pair_weight[b as usize] = w;
            total_weight += w;
        }
        Outreach {
            r,
            pair_weight,
            total_weight,
        }
    }

    /// `r_b(v)`; O(log |C_b|) via binary search in the sorted member list.
    /// Panics if `v ∉ C_b`.
    pub fn r_of(&self, bic: &Bicomps, b: u32, v: NodeId) -> u32 {
        let start = bic.bicomp_node_offsets[b as usize];
        let pos = bic
            .nodes_of(b)
            .binary_search(&v)
            .expect("node must belong to the component");
        self.r[start + pos]
    }

    /// The r values of component `b`, aligned with `bic.nodes_of(b)`.
    pub fn r_slice(&self, bic: &Bicomps, b: u32) -> &[u32] {
        &self.r[bic.bicomp_node_offsets[b as usize]..bic.bicomp_node_offsets[b as usize + 1]]
    }
}

/// The break-point probability `bcₐ(v)` for every node (Eq. 21, full sum;
/// zero for non-cutpoints).
pub fn bca_values(g: &Graph, _bic: &Bicomps, tree: &BlockCutTree) -> Vec<f64> {
    let n = g.num_nodes();
    let mut bca = vec![0.0f64; n];
    if n < 2 {
        return bca;
    }
    let norm = 1.0 / (n as f64 * (n as f64 - 1.0));
    for (ci, &v) in tree.cutpoints.iter().enumerate() {
        // Branches of v partition the other n_c − 1 nodes of its component;
        // v breaks the ordered pairs (s, t) with s, t in different branches.
        let n_c = tree
            .branches(ci as u32)
            .next()
            .map(|(b, _)| tree.comp_total_of_bicomp[b as usize])
            .expect("cutpoint has at least two branches") as f64;
        let mut acc = 0.0f64;
        for (_, t) in tree.branches(ci as u32) {
            let t = t as f64;
            acc += t * (n_c - 1.0 - t);
        }
        bca[v as usize] = acc * norm;
    }
    bca
}

/// `γ` (Eq. 19): the probability mass of the ISP space relative to the SP
/// space.
pub fn gamma(g: &Graph, outreach: &Outreach) -> f64 {
    let n = g.num_nodes();
    if n < 2 {
        return 0.0;
    }
    outreach.total_weight / (n as f64 * (n as f64 - 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use saphyra_graph::fixtures::{self, fig2::*};

    fn setup(g: &Graph) -> (Bicomps, BlockCutTree, Outreach) {
        let bic = Bicomps::compute(g);
        let tree = BlockCutTree::compute(&bic);
        let or = Outreach::compute(&bic, &tree);
        (bic, tree, or)
    }

    #[test]
    fn fig2_out_reach_values() {
        let g = fixtures::paper_fig2();
        let (bic, _, or) = setup(&g);
        let c1 = bic.share_bicomp(A, B).unwrap();
        // Non-cutpoints reach only themselves.
        assert_eq!(or.r_of(&bic, c1, A), 1);
        assert_eq!(or.r_of(&bic, c1, B), 1);
        // c reaches {c, g, h} outside C1; d reaches {d, f, i, j, k}.
        assert_eq!(or.r_of(&bic, c1, C), 3);
        assert_eq!(or.r_of(&bic, c1, D), 5);
        let c5 = bic.share_bicomp(D, I).unwrap();
        // In the bridge {d, i}: d reaches everything except {i, j, k}.
        assert_eq!(or.r_of(&bic, c5, D), 8);
        assert_eq!(or.r_of(&bic, c5, I), 3);
    }

    #[test]
    fn out_reach_sums_to_component_size() {
        // Eq. 18: Σ_{v∈Cᵢ} rᵢ(v) = n_c for every component.
        for g in [
            fixtures::paper_fig2(),
            fixtures::path_graph(8),
            fixtures::lollipop_graph(5, 4),
            fixtures::two_triangles_bridge(),
            fixtures::disconnected_mix(),
            fixtures::star_graph(7),
        ] {
            let (bic, tree, or) = setup(&g);
            for b in 0..bic.num_bicomps as u32 {
                let total: u64 = or.r_slice(&bic, b).iter().map(|&x| x as u64).sum();
                assert_eq!(
                    total, tree.comp_total_of_bicomp[b as usize] as u64,
                    "component {b}"
                );
            }
        }
    }

    #[test]
    fn gamma_on_path_graph() {
        // Path 0-1-2-3: blocks {01},{12},{23}; per DESIGN example γ = 5/3.
        let g = fixtures::path_graph(4);
        let (_, _, or) = setup(&g);
        let gm = gamma(&g, &or);
        assert!((gm - 5.0 / 3.0).abs() < 1e-12, "gamma={gm}");
    }

    #[test]
    fn gamma_is_one_on_biconnected_graphs() {
        // Single bicomponent: every r = 1, W = n(n−1), γ = 1.
        for g in [fixtures::cycle_graph(6), fixtures::complete_graph(5)] {
            let (_, _, or) = setup(&g);
            assert!((gamma(&g, &or) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bca_matches_brandes_on_trees() {
        // In a tree every inner node is a cutpoint and ALL betweenness comes
        // from break points: bc(v) = bcₐ(v) exactly.
        for g in [
            fixtures::path_graph(6),
            fixtures::star_graph(7),
            fixtures::binary_tree(3),
        ] {
            let (bic, tree, _) = setup(&g);
            let bca = bca_values(&g, &bic, &tree);
            let bc = saphyra_graph::brandes::betweenness_exact(&g);
            for v in g.nodes() {
                assert!(
                    (bca[v as usize] - bc[v as usize]).abs() < 1e-12,
                    "node {v}: bca={} bc={}",
                    bca[v as usize],
                    bc[v as usize]
                );
            }
        }
    }

    #[test]
    fn bca_full_sum_on_multiway_cutpoint() {
        // Star center belongs to n−1 blocks — the case where the paper's
        // single-term formula (Eq. 21) underestimates and the full sum is
        // required.
        let g = fixtures::star_graph(5);
        let (bic, tree, _) = setup(&g);
        let bca = bca_values(&g, &bic, &tree);
        // Center (n=5): four branches of weight 1, Σ 1·(5−1−1) = 12, so
        // bcₐ = 12/20 = 0.6 = exact betweenness (12 leaf pairs of 20).
        let bc = saphyra_graph::brandes::betweenness_exact(&g);
        assert!((bca[0] - bc[0]).abs() < 1e-12);
        assert!(bca[1..].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn bca_zero_on_biconnected_graph() {
        let g = fixtures::cycle_graph(8);
        let (bic, tree, _) = setup(&g);
        assert!(bca_values(&g, &bic, &tree).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn disconnected_weights_stay_within_components() {
        let g = fixtures::disconnected_mix();
        let (bic, tree, or) = setup(&g);
        // Triangle component: all r = 1, n_c = 3, W = 3·1·2 = 6.
        // Edge component: r = 1 each, n_c = 2, W = 2·1·1 = 2.
        let mut ws: Vec<f64> = (0..bic.num_bicomps).map(|b| or.pair_weight[b]).collect();
        ws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(ws, vec![2.0, 6.0]);
        let _ = tree;
    }
}
