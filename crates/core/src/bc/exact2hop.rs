//! `Exact_bc`: closed-form risk mass of the 2-hop exact subspace
//! (paper §IV-B, Lemmas 17-19).
//!
//! The exact subspace `X̂` holds every intra-component shortest path of
//! length 2 whose inner node is a target. For a path `s – v – t`
//! (`v ∈ A`, `d(s,t) = 2`, both edges in the same bicomponent `b`) the PISP
//! mass is `q_st / (σ_st · γη)` where `σ_st` is the number of common
//! neighbors of `s` and `t` — all of which provably lie in `b` whenever
//! `s, t` share a bicomponent (two distinct common neighbors close a cycle).
//!
//! The sweep follows the paper's two-phase algorithm: for every source
//! `s ∈ B` (the neighbors of targets), phase 1 counts intra-component
//! 2-paths (`σ_st`), phase 2 walks only through target inner nodes and
//! accumulates `ℓ̂` and `λ̂`. Complexity O(K), `K = Σ_{v∈B} deg(v)²`
//! (Lemma 18). Values are returned in *unnormalized* `q`-units; the ranker
//! divides by `γη`.

use saphyra_graph::{Bicomps, Graph, NodeId};

use super::outreach::Outreach;

const NONE: u32 = u32::MAX;

/// Output of the exact sweep, in unnormalized `q`-units
/// (divide by `γη` to get PISP probabilities).
#[derive(Debug, Clone)]
pub struct ExactBcOutput {
    /// `Σ_(s,t)` of `w^A_st · q_st / σ_st`: the mass of `X̂`.
    pub lambda_raw: f64,
    /// Per target `v`: `Σ_{(s,t): v common neighbor} q_st / σ_st`.
    pub exact_raw: Vec<f64>,
    /// CSR slots visited (the realized `K` of Lemma 18).
    pub work: u64,
}

/// Runs the `Exact_bc` sweep. `a_index[v]` maps node → target position or
/// `u32::MAX`.
pub fn exact_bc(
    g: &Graph,
    bic: &Bicomps,
    outreach: &Outreach,
    targets: &[NodeId],
    a_index: &[u32],
) -> ExactBcOutput {
    let n = g.num_nodes();
    let norm = 1.0 / (n as f64 * (n as f64 - 1.0));
    let mut exact_raw = vec![0.0f64; targets.len()];
    let mut lambda_raw = 0.0f64;
    let mut work = 0u64;

    // B: unique neighbors of targets.
    let mut in_b = vec![false; n];
    let mut b_set: Vec<NodeId> = Vec::new();
    for &v in targets {
        for &u in g.neighbors(v) {
            if !in_b[u as usize] {
                in_b[u as usize] = true;
                b_set.push(u);
            }
        }
    }

    // Stamped scratch: adjacency marks and per-t 2-path counts.
    let mut adj_stamp = vec![0u32; n];
    let mut w_stamp = vec![0u32; n];
    let mut w_count = vec![0u32; n];
    let mut generation = 0u32;

    // Cache of r values per (component, node): only cutpoints need lookups.
    let r_of = |b: u32, v: NodeId| -> f64 {
        if bic.is_cutpoint[v as usize] {
            outreach.r_of(bic, b, v) as f64
        } else {
            1.0
        }
    };

    for &s in &b_set {
        generation += 1;
        for &u in g.neighbors(s) {
            adj_stamp[u as usize] = generation;
        }

        // Phase 1: count intra-component 2-paths s - v - t into σ_st.
        for slot in g.slot_range(s) {
            let v = g.neighbor_at(slot);
            let b1 = bic.bicomp_of_slot(g, slot);
            for slot2 in g.slot_range(v) {
                work += 1;
                if bic.bicomp_of_slot(g, slot2) != b1 {
                    continue;
                }
                let t = g.neighbor_at(slot2);
                if t == s || adj_stamp[t as usize] == generation {
                    continue; // t is s itself or adjacent: not distance 2
                }
                if w_stamp[t as usize] != generation {
                    w_stamp[t as usize] = generation;
                    w_count[t as usize] = 0;
                }
                w_count[t as usize] += 1;
            }
        }

        // Phase 2: accumulate mass through target inner nodes only.
        for slot in g.slot_range(s) {
            let v = g.neighbor_at(slot);
            let ai = a_index[v as usize];
            if ai == NONE {
                continue;
            }
            let b1 = bic.bicomp_of_slot(g, slot);
            let r_s = r_of(b1, s);
            for slot2 in g.slot_range(v) {
                work += 1;
                if bic.bicomp_of_slot(g, slot2) != b1 {
                    continue;
                }
                let t = g.neighbor_at(slot2);
                if t == s || adj_stamp[t as usize] == generation {
                    continue;
                }
                debug_assert_eq!(w_stamp[t as usize], generation);
                let sigma = w_count[t as usize] as f64;
                let q = r_s * r_of(b1, t) * norm;
                let mass = q / sigma;
                exact_raw[ai as usize] += mass;
                lambda_raw += mass;
            }
        }
    }

    ExactBcOutput {
        lambda_raw,
        exact_raw,
        work,
    }
}

/// Brute-force reference: enumerates every ordered node pair, classifies the
/// 2-hop paths between them and sums the same masses. O(n² · Δ), tests only.
pub fn exact_bc_bruteforce(
    g: &Graph,
    bic: &Bicomps,
    outreach: &Outreach,
    targets: &[NodeId],
    a_index: &[u32],
) -> ExactBcOutput {
    let n = g.num_nodes();
    let norm = 1.0 / (n as f64 * (n as f64 - 1.0));
    let mut exact_raw = vec![0.0f64; targets.len()];
    let mut lambda_raw = 0.0f64;
    for s in g.nodes() {
        for t in g.nodes() {
            if s == t || g.has_edge(s, t) {
                continue;
            }
            // Intra-component common neighbors (all 2-paths with both edges
            // in the same component).
            let mut sigma = 0usize;
            let mut inner: Vec<(NodeId, u32)> = Vec::new();
            for &v in g.neighbors(s) {
                if g.has_edge(v, t) {
                    let b1 = bic.edge_bicomp[g.edge_id(s, v).unwrap() as usize];
                    let b2 = bic.edge_bicomp[g.edge_id(v, t).unwrap() as usize];
                    if b1 == b2 {
                        sigma += 1;
                        inner.push((v, b1));
                    }
                }
            }
            if sigma == 0 {
                continue;
            }
            for &(v, b) in &inner {
                if a_index[v as usize] == NONE {
                    continue;
                }
                let q = outreach.r_of(bic, b, s) as f64 * outreach.r_of(bic, b, t) as f64 * norm;
                let mass = q / sigma as f64;
                exact_raw[a_index[v as usize] as usize] += mass;
                lambda_raw += mass;
            }
        }
    }
    ExactBcOutput {
        lambda_raw,
        exact_raw,
        work: 0,
    }
}

/// Builds the `a_index` map for a target list (panics on duplicates).
pub fn build_a_index(n: usize, targets: &[NodeId]) -> Vec<u32> {
    let mut a_index = vec![NONE; n];
    for (i, &v) in targets.iter().enumerate() {
        assert!(
            a_index[v as usize] == NONE,
            "duplicate target node {v} in subset"
        );
        a_index[v as usize] = i as u32;
    }
    a_index
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use saphyra_graph::fixtures::{self, fig2::*};
    use saphyra_graph::{BlockCutTree, GraphBuilder};

    fn setup(g: &Graph) -> (Bicomps, Outreach) {
        let bic = Bicomps::compute(g);
        let tree = BlockCutTree::compute(&bic);
        let or = Outreach::compute(&bic, &tree);
        (bic, or)
    }

    fn check(g: &Graph, targets: &[NodeId]) {
        let (bic, or) = setup(g);
        let a_index = build_a_index(g.num_nodes(), targets);
        let fast = exact_bc(g, &bic, &or, targets, &a_index);
        let slow = exact_bc_bruteforce(g, &bic, &or, targets, &a_index);
        assert!(
            (fast.lambda_raw - slow.lambda_raw).abs() < 1e-9,
            "lambda {} vs {}",
            fast.lambda_raw,
            slow.lambda_raw
        );
        for (i, (&a, &b)) in fast.exact_raw.iter().zip(&slow.exact_raw).enumerate() {
            assert!((a - b).abs() < 1e-9, "target {i}: {a} vs {b}");
        }
    }

    #[test]
    fn matches_bruteforce_on_fixtures() {
        let g = fixtures::paper_fig2();
        check(&g, &[C]);
        check(&g, &[D]);
        check(&g, &[A, G, J]);
        check(&g, &(0..11u32).collect::<Vec<_>>());
        let g = fixtures::grid_graph(5, 4);
        check(&g, &[6, 7, 12]);
        let g = fixtures::lollipop_graph(5, 4);
        check(&g, &[4, 5]);
        let g = fixtures::two_triangles_bridge();
        check(&g, &[2, 3]);
    }

    #[test]
    fn matches_bruteforce_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(11);
        for round in 0..8 {
            let n = 25;
            let mut b = GraphBuilder::new(n);
            for u in 0..n as u32 {
                for v in (u + 1)..n as u32 {
                    if rng.gen::<f64>() < 0.12 {
                        b.push(u, v);
                    }
                }
            }
            let g = b.build().unwrap();
            let mut targets: Vec<u32> = (0..n as u32).filter(|_| rng.gen::<f64>() < 0.3).collect();
            if targets.is_empty() {
                targets.push(round as u32 % n as u32);
            }
            check(&g, &targets);
        }
    }

    #[test]
    fn star_center_exact_mass_is_everything() {
        // Star: every shortest path is a 2-hop through the center. With
        // A = {center}, X̂ covers the whole PISP space minus nothing:
        // λ̂_raw = γη = Σ over leaf pairs of q/σ = total pair mass except
        // adjacent (center, leaf) pairs.
        let g = fixtures::star_graph(6);
        let (bic, or) = setup(&g);
        let a_index = build_a_index(6, &[0]);
        let out = exact_bc(&g, &bic, &or, &[0], &a_index);
        // 5 blocks of size 2; pairs within a block are adjacent -> no
        // distance-2 pairs inside any single bicomponent. So λ̂_raw = 0!
        // (Leaf-leaf paths cross blocks and exist only as broken pieces;
        // the center's betweenness is pure bcₐ.)
        assert_eq!(out.lambda_raw, 0.0);
        assert_eq!(out.exact_raw, vec![0.0]);
    }

    #[test]
    fn triangle_with_hair_has_two_hop_mass() {
        // Triangle {0,1,2} with pendant 3 on node 2: pair (0,1) has d=1;
        // pairs at distance 2 inside the triangle don't exist; attach the
        // square to create one.
        let g = GraphBuilder::new(5)
            .edges([(0, 1), (1, 2), (2, 3), (3, 0), (0, 4)])
            .build()
            .unwrap();
        let (bic, or) = setup(&g);
        // Cycle 0-1-2-3: pairs (0,2) and (1,3) are at distance 2 with two
        // common neighbors each.
        let a_index = build_a_index(5, &[1]);
        let out = exact_bc(&g, &bic, &or, &[1], &a_index);
        // Node 1 is the inner node of paths 0-1-2 (ordered both ways).
        // q_02 = r(0)·r(2)/(5·4) = (2·1)/20 (r(0)=2: node 4 hangs off 0).
        // σ_02 = 2 (via 1 and via 3). Mass per direction = 0.1/2 = 0.05.
        let expect = 2.0 * (2.0 * 1.0 / 20.0) / 2.0;
        assert!((out.exact_raw[0] - expect).abs() < 1e-12);
        check(&g, &[0, 1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "duplicate target")]
    fn duplicate_targets_rejected() {
        build_a_index(5, &[1, 1]);
    }
}
