//! SaPHyRa_bc (paper §IV): ranking node subsets by betweenness centrality.
//!
//! Pipeline: biconnected decomposition → out-reach sets → ISP/PISP
//! distributions → 2-hop exact subspace (`Exact_bc`) → multistage rejection
//! sampler (`Gen_bc`) → the generic framework of [`crate::framework`] →
//! assembly `b̃c(v) = bcₐ(v) + γη(ℓ̂_v + λ·ℓ̃_v)` (Theorem 24).

pub mod exact2hop;
pub mod exact_full;
pub mod gen;
pub mod isp;
pub mod outreach;
pub mod ranker;
pub mod snapshot;
pub mod vcbound;

pub use exact2hop::{build_a_index, exact_bc, ExactBcOutput};
pub use gen::BcApproxProblem;
pub use isp::Pisp;
pub use outreach::{bca_values, gamma, Outreach};
pub use ranker::{BcDecomposition, BcEstimate, BcIndex, BcRunStats, DeltaOutcome, SaphyraBcConfig};
pub use snapshot::{read_decomposition, write_decomposition, DEC_FORMAT_VERSION};
pub use vcbound::{vc_bounds, vc_bounds_from, vc_lhop, VcBoundReport, VcPrecomp};
