//! Binary (de)serialization of the reusable SaPHyRa_bc preprocessing
//! ([`BcDecomposition`]), so a ranking service can restore a graph's full
//! index from disk instead of re-running the O(m + n) decomposition plus
//! the per-component diameter BFSes on every restart.
//!
//! The encoding composes the graph-substrate encoders
//! ([`saphyra_graph::binio`]) with this crate's own derived tables
//! (out-reach, bcₐ, γ, VC precomputation). Floats travel by bit pattern,
//! so a restored decomposition is *bit-identical* to the one that was
//! saved — rankings computed from it are byte-identical per seed, the
//! service's determinism contract extended across restarts.

use saphyra_graph::binio;
use saphyra_graph::wire::{self, Reader, WireError};
use saphyra_graph::Graph;

use super::outreach::Outreach;
use super::ranker::BcDecomposition;
use super::vcbound::VcPrecomp;

/// Format version of the decomposition encoding. Bump on any layout
/// change; readers reject mismatches (the caller then falls back to
/// recomputation).
pub const DEC_FORMAT_VERSION: u32 = 1;

fn err<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError(msg.into()))
}

/// Appends the binary encoding of `dec` (including a leading
/// [`DEC_FORMAT_VERSION`]).
pub fn write_decomposition(dec: &BcDecomposition, out: &mut Vec<u8>) {
    wire::put_u32(out, DEC_FORMAT_VERSION);
    binio::write_bicomps(&dec.bic, out);
    binio::write_blockcut(&dec.tree, out);
    wire::put_vec_u32(out, &dec.outreach.r);
    wire::put_vec_f64(out, &dec.outreach.pair_weight);
    wire::put_f64(out, dec.outreach.total_weight);
    wire::put_vec_f64(out, &dec.bca);
    wire::put_f64(out, dec.gamma);
    wire::put_u32(out, dec.vc_precomp.vd_upper);
    wire::put_u32(out, dec.vc_precomp.bd_upper);
    wire::put_vec_u32(out, &dec.vc_precomp.bicomp_diam_upper);
}

/// Decodes a [`BcDecomposition`] previously written by
/// [`write_decomposition`], validating the format version and every
/// cross-array length against `graph`.
pub fn read_decomposition(r: &mut Reader, graph: &Graph) -> Result<BcDecomposition, WireError> {
    let version = r.u32()?;
    if version != DEC_FORMAT_VERSION {
        return err(format!(
            "decomposition format version {version} != supported {DEC_FORMAT_VERSION}"
        ));
    }
    let bic = binio::read_bicomps(r, graph)?;
    let tree = binio::read_blockcut(r, graph, &bic)?;

    let outreach_r = r.vec_u32()?;
    if outreach_r.len() != bic.bicomp_nodes.len() {
        return err("out-reach length mismatches component memberships");
    }
    let pair_weight = r.vec_f64()?;
    if pair_weight.len() != bic.num_bicomps {
        return err("pair_weight length mismatches component count");
    }
    let total_weight = r.f64()?;
    let outreach = Outreach {
        r: outreach_r,
        pair_weight,
        total_weight,
    };

    let bca = r.vec_f64()?;
    if bca.len() != graph.num_nodes() {
        return err("bca length mismatches node count");
    }
    let gamma = r.f64()?;

    let vd_upper = r.u32()?;
    let bd_upper = r.u32()?;
    let bicomp_diam_upper = r.vec_u32()?;
    if bicomp_diam_upper.len() != bic.num_bicomps {
        return err("diameter-bound length mismatches component count");
    }
    let vc_precomp = VcPrecomp {
        vd_upper,
        bd_upper,
        bicomp_diam_upper,
    };

    Ok(BcDecomposition {
        bic,
        tree,
        outreach,
        bca,
        gamma,
        vc_precomp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bc::SaphyraBcConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saphyra_graph::fixtures;

    fn round_trip(g: &Graph) -> (BcDecomposition, BcDecomposition) {
        let dec = BcDecomposition::compute(g);
        let mut buf = Vec::new();
        write_decomposition(&dec, &mut buf);
        let mut r = Reader::new(&buf);
        let dec2 = read_decomposition(&mut r, g).unwrap();
        assert!(r.is_empty(), "trailing bytes after decomposition");
        (dec, dec2)
    }

    #[test]
    fn round_trip_is_bit_identical() {
        for g in [
            fixtures::paper_fig2(),
            fixtures::grid_graph(5, 5),
            fixtures::lollipop_graph(5, 4),
            fixtures::disconnected_mix(),
            saphyra_graph::GraphBuilder::new(4).build().unwrap(),
        ] {
            let (dec, dec2) = round_trip(&g);
            assert_eq!(dec.bic.edge_bicomp, dec2.bic.edge_bicomp);
            assert_eq!(dec.tree.cut_branch, dec2.tree.cut_branch);
            assert_eq!(dec.outreach.r, dec2.outreach.r);
            let bits = |xs: &[f64]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(
                bits(&dec.outreach.pair_weight),
                bits(&dec2.outreach.pair_weight)
            );
            assert_eq!(
                dec.outreach.total_weight.to_bits(),
                dec2.outreach.total_weight.to_bits()
            );
            assert_eq!(bits(&dec.bca), bits(&dec2.bca));
            assert_eq!(dec.gamma.to_bits(), dec2.gamma.to_bits());
            assert_eq!(dec.vc_precomp.vd_upper, dec2.vc_precomp.vd_upper);
            assert_eq!(dec.vc_precomp.bd_upper, dec2.vc_precomp.bd_upper);
            assert_eq!(
                dec.vc_precomp.bicomp_diam_upper,
                dec2.vc_precomp.bicomp_diam_upper
            );
        }
    }

    #[test]
    fn restored_decomposition_ranks_bit_identically() {
        let g = fixtures::grid_graph(6, 5);
        let (dec, dec2) = round_trip(&g);
        let targets = [3u32, 8, 14, 21];
        let cfg = SaphyraBcConfig::new(0.1, 0.1);
        let mut rng = StdRng::seed_from_u64(42);
        let fresh = dec.rank_subset(&g, &targets, &cfg, &mut rng);
        let mut rng = StdRng::seed_from_u64(42);
        let restored = dec2.rank_subset(&g, &targets, &cfg, &mut rng);
        for (a, b) in fresh.bc.iter().zip(&restored.bc) {
            assert_eq!(a.to_bits(), b.to_bits(), "restored ranks diverged");
        }
        assert_eq!(fresh.stats.samples, restored.stats.samples);
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let g = fixtures::grid_graph(3, 3);
        let dec = BcDecomposition::compute(&g);
        let mut buf = Vec::new();
        write_decomposition(&dec, &mut buf);
        buf[0] ^= 0xFF; // mangle the leading version
        let e = read_decomposition(&mut Reader::new(&buf), &g).unwrap_err();
        assert!(e.to_string().contains("version"), "{e}");
    }

    #[test]
    fn wrong_graph_is_rejected() {
        let g = fixtures::grid_graph(4, 4);
        let dec = BcDecomposition::compute(&g);
        let mut buf = Vec::new();
        write_decomposition(&dec, &mut buf);
        let other = fixtures::grid_graph(3, 3);
        assert!(read_decomposition(&mut Reader::new(&buf), &other).is_err());
    }
}
