//! Property-based invariants of the synthetic network generators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra_gen::ba::{ba_with_pendants, barabasi_albert};
use saphyra_gen::er::{gnm, gnp};
use saphyra_gen::rmat::{rmat, RmatParams};
use saphyra_gen::road::road_grid;
use saphyra_gen::ws::watts_strogatz;
use saphyra_graph::connectivity::Components;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn gnm_has_exact_edge_count(n in 4usize..60, frac in 0.0f64..0.9, seed in 0u64..1000) {
        let max = n * (n - 1) / 2;
        let m = ((max as f64) * frac) as usize;
        let g = gnm(n, m, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.num_nodes(), n);
        prop_assert_eq!(g.num_edges(), m);
    }

    #[test]
    fn gnp_is_simple(n in 2usize..40, p in 0.0f64..1.0, seed in 0u64..1000) {
        let g = gnp(n, p, &mut StdRng::seed_from_u64(seed));
        // Builder guarantees simplicity; check no self-loops survive.
        for v in g.nodes() {
            prop_assert!(!g.has_edge(v, v));
        }
        prop_assert!(g.num_edges() <= n * (n - 1) / 2);
    }

    #[test]
    fn ba_is_connected_with_min_degree(n in 10usize..120, m in 1usize..5, seed in 0u64..1000) {
        prop_assume!(n > m + 1);
        let g = barabasi_albert(n, m, &mut StdRng::seed_from_u64(seed));
        let c = Components::compute(&g);
        prop_assert_eq!(c.count(), 1);
        for v in g.nodes() {
            prop_assert!(g.degree(v) >= m);
        }
    }

    #[test]
    fn ba_pendants_are_degree_one(core in 10usize..60, leaves in 1usize..40, seed in 0u64..500) {
        let g = ba_with_pendants(core, 2, leaves, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.num_nodes(), core + leaves);
        for leaf in core..core + leaves {
            prop_assert_eq!(g.degree(leaf as u32), 1);
        }
    }

    #[test]
    fn ws_preserves_edge_count(n in 10usize..80, half_k in 1usize..4, beta in 0.0f64..1.0, seed in 0u64..500) {
        let k = 2 * half_k;
        prop_assume!(n > k);
        let g = watts_strogatz(n, k, beta, &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.num_edges(), n * half_k);
    }

    #[test]
    fn rmat_stays_in_bounds(scale in 4u32..10, m in 10usize..2000, seed in 0u64..500) {
        let g = rmat(scale, m, RmatParams::social(), &mut StdRng::seed_from_u64(seed));
        prop_assert_eq!(g.num_nodes(), 1usize << scale);
        prop_assert!(g.num_edges() <= m + m / 4);
    }

    #[test]
    fn road_grid_respects_lattice(w in 2usize..25, h in 2usize..25, pd in 0.0f64..0.5, seed in 0u64..500) {
        let r = road_grid(w, h, pd, &mut StdRng::seed_from_u64(seed));
        let g = &r.graph;
        prop_assert_eq!(g.num_nodes(), w * h);
        // Every surviving edge is a lattice edge.
        for (u, v, _) in g.edges() {
            let (ux, uy) = (u as usize % w, u as usize / w);
            let (vx, vy) = (v as usize % w, v as usize / w);
            let manhattan = ux.abs_diff(vx) + uy.abs_diff(vy);
            prop_assert_eq!(manhattan, 1, "non-lattice edge {}-{}", u, v);
        }
        prop_assert!(g.num_edges() <= (w - 1) * h + w * (h - 1));
    }

    #[test]
    fn areas_lie_within_grid(w in 10usize..40, h in 10usize..40, seed in 0u64..200) {
        let r = road_grid(w, h, 0.05, &mut StdRng::seed_from_u64(seed));
        for a in r.case_study_areas() {
            let nodes = a.nodes(&r);
            prop_assert!(!nodes.is_empty(), "{} empty", a.name);
            for &v in &nodes {
                prop_assert!((v as usize) < w * h);
            }
        }
    }
}
