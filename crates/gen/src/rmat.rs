//! R-MAT recursive-matrix graphs (Chakrabarti–Zhan–Faloutsos).
//!
//! R-MAT with skewed quadrant probabilities produces the heavy-tailed degree
//! distributions and tiny diameters of LiveJournal/Orkut-class social
//! networks — the regime where almost every node has small but *nonzero*
//! betweenness and fixed-ε estimators collapse to false zeros (Fig. 6).

use rand::Rng;
use saphyra_graph::{Graph, GraphBuilder, NodeId};

/// R-MAT parameters: quadrant probabilities (sum to 1) and smoothing noise.
#[derive(Debug, Clone, Copy)]
pub struct RmatParams {
    /// Top-left quadrant probability (the "community core").
    pub a: f64,
    /// Top-right.
    pub b: f64,
    /// Bottom-left.
    pub c: f64,
    /// Per-level multiplicative noise on `a` (0.0 = deterministic shape).
    pub noise: f64,
}

impl RmatParams {
    /// The standard social-network parameterization (a=0.57, b=c=0.19).
    pub fn social() -> Self {
        RmatParams {
            a: 0.57,
            b: 0.19,
            c: 0.19,
            noise: 0.1,
        }
    }

    /// A denser, more symmetric mix for Orkut-like graphs.
    pub fn dense_social() -> Self {
        RmatParams {
            a: 0.45,
            b: 0.22,
            c: 0.22,
            noise: 0.05,
        }
    }
}

/// Generates an R-MAT graph on `2^scale` nodes aiming for `m_target`
/// distinct undirected edges (duplicates and self-loops are dropped, so the
/// realized count is slightly lower on dense settings).
pub fn rmat<R: Rng>(scale: u32, m_target: usize, params: RmatParams, rng: &mut R) -> Graph {
    assert!((1..31).contains(&scale));
    let n = 1usize << scale;
    let mut b = GraphBuilder::new(n).with_edge_capacity(m_target);
    let d = 1.0 - params.a - params.b - params.c;
    assert!(d > 0.0, "quadrant probabilities must sum below 1");
    // Oversample: dedup trims roughly 5-15% on our densities.
    let attempts = m_target + m_target / 4;
    for _ in 0..attempts {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            // Per-level noisy quadrant probabilities.
            let f = 1.0 + params.noise * (2.0 * rng.gen::<f64>() - 1.0);
            let a = (params.a * f).min(0.95);
            let ab = a + params.b;
            let abc = ab + params.c;
            let r = rng.gen::<f64>();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < ab {
                (0, 1)
            } else if r < abc {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        if u != v {
            b.push(u as NodeId, v as NodeId);
        }
    }
    b.build().expect("valid R-MAT graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saphyra_graph::connectivity::Components;

    #[test]
    fn node_count_and_rough_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = rmat(10, 8000, RmatParams::social(), &mut rng);
        assert_eq!(g.num_nodes(), 1024);
        let m = g.num_edges();
        assert!(m > 6000 && m <= 10000, "m={m}");
    }

    #[test]
    fn heavy_tail() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = rmat(12, 40_000, RmatParams::social(), &mut rng);
        let avg = 2.0 * g.num_edges() as f64 / g.num_nodes() as f64;
        assert!(
            g.max_degree() as f64 > 8.0 * avg,
            "max {} avg {avg}",
            g.max_degree()
        );
    }

    #[test]
    fn giant_component_dominates() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = rmat(11, 20_000, RmatParams::social(), &mut rng);
        let c = Components::compute(&g);
        let giant = c.sizes[c.largest() as usize] as f64;
        assert!(giant > 0.6 * g.num_nodes() as f64);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = rmat(8, 1000, RmatParams::social(), &mut StdRng::seed_from_u64(5));
        let b = rmat(8, 1000, RmatParams::social(), &mut StdRng::seed_from_u64(5));
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
