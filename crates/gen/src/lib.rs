//! # saphyra-gen
//!
//! Synthetic network generators standing in for the paper's datasets.
//!
//! The evaluation of SaPHyRa (§V) uses four SNAP/DIMACS networks (Flickr,
//! LiveJournal, Orkut, USA-road) that are not available offline. Each
//! generator here reproduces the *structural regime* that drives the
//! corresponding experiment — degree distribution, diameter scale,
//! true-zero fraction, bicomponent structure — at laptop scale (see
//! DESIGN.md §4 for the substitution argument).
//!
//! * [`er`]: Erdős–Rényi `G(n, m)`;
//! * [`ba`]: Barabási–Albert preferential attachment, with optional pendant
//!   leaves (high true-zero regimes like Flickr);
//! * [`ws`]: Watts–Strogatz small world;
//! * [`rmat`]: R-MAT power-law graphs (LiveJournal / Orkut regimes);
//! * [`road`]: perturbed grid road networks with geographic sub-areas
//!   (USA-road regime, Fig. 7 / Table III);
//! * [`datasets`]: the four named simulated networks with paper-shaped
//!   defaults and reduced "tiny" variants for tests and Criterion benches.
//!
//! All generators are deterministic given a seed.

pub mod ba;
pub mod datasets;
pub mod er;
pub mod rmat;
pub mod road;
pub mod ws;

pub use datasets::{flickr_sim, lj_sim, orkut_sim, road_sim, SimNetwork};
pub use road::{Area, RoadNetwork};
