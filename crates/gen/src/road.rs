//! Perturbed-grid road networks with geographic sub-areas.
//!
//! The USA-road network (DIMACS challenge 9) is a planar-ish, near-constant
//! degree, enormous-diameter graph in which almost all nodes have tiny but
//! nonzero betweenness — the hardest ranking regime in the paper (Fig. 4c:
//! baselines' rank correlation collapses). A grid with random edge
//! deletions reproduces the regime: deletions create dead-end spurs and
//! bridges (pendant-tree bicomponents, so `BD(V) ≪ VD(V)`), while the
//! lattice keeps the diameter `Θ(√n)`.
//!
//! The Fig. 7 / Table III case study maps four geographic areas (NYC, BAY,
//! CO, FL) onto the full network as *target subsets*; [`Area`] models them
//! as axis-aligned sub-rectangles, sized with the same relative proportions
//! as the paper's areas (1.1%, 1.3%, 1.8%, 4.5% of all nodes).

use rand::Rng;
use saphyra_graph::{Graph, GraphBuilder, NodeId};

/// A generated road network: the graph plus its grid geometry.
#[derive(Debug, Clone)]
pub struct RoadNetwork {
    /// The road graph; node `(x, y)` has id `y * width + x`.
    pub graph: Graph,
    /// Grid width.
    pub width: usize,
    /// Grid height.
    pub height: usize,
}

/// An axis-aligned rectangle of grid cells acting as a target subset.
#[derive(Debug, Clone)]
pub struct Area {
    /// Human-readable name (paper analogue).
    pub name: &'static str,
    /// Inclusive cell bounds `x0..x1`, `y0..y1` (exclusive upper).
    pub x0: usize,
    pub y0: usize,
    pub x1: usize,
    pub y1: usize,
}

impl Area {
    /// Node ids inside the rectangle.
    pub fn nodes(&self, road: &RoadNetwork) -> Vec<NodeId> {
        let mut out = Vec::with_capacity((self.x1 - self.x0) * (self.y1 - self.y0));
        for y in self.y0..self.y1.min(road.height) {
            for x in self.x0..self.x1.min(road.width) {
                out.push((y * road.width + x) as NodeId);
            }
        }
        out
    }
}

/// Generates a `width × height` grid road network where each lattice edge
/// survives with probability `1 − p_delete`.
pub fn road_grid<R: Rng>(width: usize, height: usize, p_delete: f64, rng: &mut R) -> RoadNetwork {
    assert!(width >= 2 && height >= 2);
    assert!((0.0..1.0).contains(&p_delete));
    let n = width * height;
    let mut b = GraphBuilder::new(n).with_edge_capacity(2 * n);
    for y in 0..height {
        for x in 0..width {
            let v = (y * width + x) as NodeId;
            if x + 1 < width && rng.gen::<f64>() >= p_delete {
                b.push(v, v + 1);
            }
            if y + 1 < height && rng.gen::<f64>() >= p_delete {
                b.push(v, v + width as NodeId);
            }
        }
    }
    RoadNetwork {
        graph: b.build().expect("valid road grid"),
        width,
        height,
    }
}

impl RoadNetwork {
    /// The four case-study areas with the paper's relative sizes
    /// (NYC < BAY < CO < FL; Table III).
    pub fn case_study_areas(&self) -> Vec<Area> {
        // Fractions of total nodes from Table III: 264K/321K/435K/1070K of
        // 23.9M. Side length of a square covering fraction f is sqrt(f).
        let mk = |name, frac: f64, cx: f64, cy: f64| {
            let side_x = ((self.width as f64) * frac.sqrt()).max(2.0) as usize;
            let side_y = ((self.height as f64) * frac.sqrt()).max(2.0) as usize;
            let x0 = ((self.width as f64 * cx) as usize).min(self.width - side_x);
            let y0 = ((self.height as f64 * cy) as usize).min(self.height - side_y);
            Area {
                name,
                x0,
                y0,
                x1: x0 + side_x,
                y1: y0 + side_y,
            }
        };
        vec![
            mk("NYC", 0.011, 0.85, 0.15),
            mk("BAY", 0.013, 0.05, 0.35),
            mk("CO", 0.018, 0.40, 0.45),
            mk("FL", 0.045, 0.70, 0.75),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saphyra_graph::connectivity::Components;
    use saphyra_graph::diameter;

    #[test]
    fn full_grid_when_no_deletion() {
        let r = road_grid(10, 8, 0.0, &mut StdRng::seed_from_u64(1));
        assert_eq!(r.graph.num_nodes(), 80);
        assert_eq!(r.graph.num_edges(), 9 * 8 + 10 * 7);
    }

    #[test]
    fn deletion_reduces_edges_but_keeps_giant_component() {
        let r = road_grid(40, 30, 0.08, &mut StdRng::seed_from_u64(2));
        let full = 39 * 30 + 40 * 29;
        assert!(r.graph.num_edges() < full);
        let c = Components::compute(&r.graph);
        let giant = c.sizes[c.largest() as usize] as f64;
        assert!(giant > 0.9 * 1200.0, "giant={giant}");
    }

    #[test]
    fn diameter_scales_like_grid() {
        let r = road_grid(40, 40, 0.05, &mut StdRng::seed_from_u64(3));
        let mut ws = saphyra_graph::bfs::BfsWorkspace::new(1600);
        let lower = diameter::double_sweep_lower(&r.graph, 0, &mut ws);
        assert!(lower >= 40, "diameter lower bound {lower}");
    }

    #[test]
    fn areas_are_disjoint_ish_and_sized() {
        let r = road_grid(100, 60, 0.05, &mut StdRng::seed_from_u64(4));
        let areas = r.case_study_areas();
        assert_eq!(areas.len(), 4);
        let sizes: Vec<usize> = areas.iter().map(|a| a.nodes(&r).len()).collect();
        // Monotone increasing NYC < BAY < CO < FL.
        assert!(sizes.windows(2).all(|w| w[0] <= w[1]), "{sizes:?}");
        // FL ~ 4.5% of 6000.
        assert!(sizes[3] >= 150 && sizes[3] <= 500, "{sizes:?}");
        for a in &areas {
            for &v in &a.nodes(&r) {
                assert!((v as usize) < r.graph.num_nodes());
            }
        }
    }
}
