//! The four named simulated networks of the evaluation (Table II
//! analogues), in three size classes.
//!
//! | Paper network | Generator | Regime preserved |
//! |---|---|---|
//! | Flickr | BA core + pendant leaves | small diameter, ~50% true zeros |
//! | LiveJournal | R-MAT (social) | power law, moderate zeros |
//! | USA-road | perturbed grid | huge diameter, near-uniform tiny bc |
//! | Orkut | R-MAT (dense) | dense, tiny diameter, no easy zeros |
//!
//! `Full` sizes keep every experiment within laptop minutes (including exact
//! Brandes ground truth); `Small`/`Tiny` shrink the same shapes for
//! integration tests and Criterion benches.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra_graph::Graph;

use crate::ba::ba_with_pendants;
use crate::rmat::{rmat, RmatParams};
use crate::road::{road_grid, RoadNetwork};

/// Size class for the simulated networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizeClass {
    /// Hundreds of nodes — unit/property tests.
    Tiny,
    /// Thousands of nodes — integration tests, Criterion benches.
    Small,
    /// Tens of thousands of nodes — the figure-regeneration binaries.
    Full,
}

/// The four simulated networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimNetwork {
    /// Flickr analogue (BA + pendants).
    Flickr,
    /// LiveJournal analogue (social R-MAT).
    LiveJournal,
    /// USA-road analogue (perturbed grid).
    UsaRoad,
    /// Orkut analogue (dense R-MAT).
    Orkut,
}

impl SimNetwork {
    /// All four, in the paper's presentation order.
    pub fn all() -> [SimNetwork; 4] {
        [
            SimNetwork::Flickr,
            SimNetwork::LiveJournal,
            SimNetwork::UsaRoad,
            SimNetwork::Orkut,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            SimNetwork::Flickr => "flickr-sim",
            SimNetwork::LiveJournal => "livejournal-sim",
            SimNetwork::UsaRoad => "usa-road-sim",
            SimNetwork::Orkut => "orkut-sim",
        }
    }
}

impl std::str::FromStr for SimNetwork {
    type Err = String;

    /// Parses the CLI/service spelling (`flickr`, `livejournal`,
    /// `usa-road`, `orkut`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "flickr" => Ok(SimNetwork::Flickr),
            "livejournal" => Ok(SimNetwork::LiveJournal),
            "usa-road" => Ok(SimNetwork::UsaRoad),
            "orkut" => Ok(SimNetwork::Orkut),
            other => Err(format!(
                "unknown network {other:?} (want flickr|livejournal|usa-road|orkut)"
            )),
        }
    }
}

impl std::str::FromStr for SizeClass {
    type Err = String;

    /// Parses the CLI/service spelling (`tiny`, `small`, `full`).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "tiny" => Ok(SizeClass::Tiny),
            "small" => Ok(SizeClass::Small),
            "full" => Ok(SizeClass::Full),
            other => Err(format!(
                "unknown size class {other:?} (want tiny|small|full)"
            )),
        }
    }
}

impl SimNetwork {
    /// Builds the network at the given size class (deterministic per seed).
    pub fn build(&self, size: SizeClass, seed: u64) -> Graph {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5a9a_c0de);
        match (self, size) {
            (SimNetwork::Flickr, SizeClass::Tiny) => ba_with_pendants(300, 4, 300, &mut rng),
            (SimNetwork::Flickr, SizeClass::Small) => ba_with_pendants(1500, 6, 1500, &mut rng),
            (SimNetwork::Flickr, SizeClass::Full) => ba_with_pendants(6000, 8, 6000, &mut rng),
            (SimNetwork::LiveJournal, SizeClass::Tiny) => {
                rmat(9, 4_000, RmatParams::social(), &mut rng)
            }
            (SimNetwork::LiveJournal, SizeClass::Small) => {
                rmat(12, 30_000, RmatParams::social(), &mut rng)
            }
            (SimNetwork::LiveJournal, SizeClass::Full) => {
                rmat(14, 130_000, RmatParams::social(), &mut rng)
            }
            (SimNetwork::UsaRoad, _) => road_sim(size, seed).graph,
            (SimNetwork::Orkut, SizeClass::Tiny) => {
                rmat(9, 8_000, RmatParams::dense_social(), &mut rng)
            }
            (SimNetwork::Orkut, SizeClass::Small) => {
                rmat(11, 50_000, RmatParams::dense_social(), &mut rng)
            }
            (SimNetwork::Orkut, SizeClass::Full) => {
                rmat(13, 240_000, RmatParams::dense_social(), &mut rng)
            }
        }
    }
}

/// Flickr analogue (see [`SimNetwork::Flickr`]).
pub fn flickr_sim(size: SizeClass, seed: u64) -> Graph {
    SimNetwork::Flickr.build(size, seed)
}

/// LiveJournal analogue.
pub fn lj_sim(size: SizeClass, seed: u64) -> Graph {
    SimNetwork::LiveJournal.build(size, seed)
}

/// Orkut analogue.
pub fn orkut_sim(size: SizeClass, seed: u64) -> Graph {
    SimNetwork::Orkut.build(size, seed)
}

/// USA-road analogue, with grid geometry for the Fig. 7 areas.
pub fn road_sim(size: SizeClass, seed: u64) -> RoadNetwork {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00dd_5eed);
    match size {
        SizeClass::Tiny => road_grid(24, 16, 0.08, &mut rng),
        SizeClass::Small => road_grid(80, 50, 0.08, &mut rng),
        SizeClass::Full => road_grid(180, 110, 0.08, &mut rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saphyra_graph::connectivity::Components;

    #[test]
    fn tiny_networks_build_and_are_nontrivial() {
        for net in SimNetwork::all() {
            let g = net.build(SizeClass::Tiny, 1);
            assert!(g.num_nodes() >= 300, "{}: n={}", net.name(), g.num_nodes());
            assert!(g.num_edges() >= 300, "{}: m={}", net.name(), g.num_edges());
            let c = Components::compute(&g);
            let giant = c.sizes[c.largest() as usize] as f64;
            assert!(
                giant >= 0.5 * g.num_nodes() as f64,
                "{}: giant {giant} of {}",
                net.name(),
                g.num_nodes()
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        for net in SimNetwork::all() {
            let a = net.build(SizeClass::Tiny, 42);
            let b = net.build(SizeClass::Tiny, 42);
            assert_eq!(a.num_edges(), b.num_edges(), "{}", net.name());
            let c = net.build(SizeClass::Tiny, 43);
            // Different seed should (overwhelmingly) differ.
            assert!(
                a.num_edges() != c.num_edges()
                    || a.edges().collect::<Vec<_>>() != c.edges().collect::<Vec<_>>(),
                "{}",
                net.name()
            );
        }
    }

    #[test]
    fn flickr_sim_has_many_leaves() {
        let g = flickr_sim(SizeClass::Tiny, 7);
        let leaves = g.nodes().filter(|&v| g.degree(v) == 1).count();
        assert!(leaves as f64 > 0.3 * g.num_nodes() as f64);
    }

    #[test]
    fn road_sim_exposes_areas() {
        let r = road_sim(SizeClass::Tiny, 7);
        let areas = r.case_study_areas();
        assert_eq!(areas.len(), 4);
        assert!(areas.iter().all(|a| !a.nodes(&r).is_empty()));
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = SimNetwork::all().iter().map(|n| n.name()).collect();
        assert_eq!(
            names,
            vec!["flickr-sim", "livejournal-sim", "usa-road-sim", "orkut-sim"]
        );
    }
}
