//! Barabási–Albert preferential attachment, with an optional pendant-leaf
//! phase.
//!
//! Social networks like Flickr combine a power-law core with a large
//! population of degree-1 nodes (59% of Flickr nodes have zero betweenness
//! in the paper's ground truth, Fig. 6a). Plain BA produces minimum degree
//! `m ≥ 1`; the pendant phase attaches extra leaves preferentially, which
//! reproduces the heavy true-zero regime that makes ranking "easy" for the
//! baselines on Flickr.

use rand::Rng;
use saphyra_graph::{Graph, GraphBuilder, NodeId};

/// Barabási–Albert graph: starts from a clique on `m + 1` nodes, then each
/// new node attaches to `m` distinct existing nodes chosen preferentially
/// by degree.
pub fn barabasi_albert<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(m >= 1 && n > m + 1, "need n > m + 1 ≥ 2");
    let mut b = GraphBuilder::new(n).with_edge_capacity(n * m);
    // Repeated-endpoint list: node v appears deg(v) times; uniform sampling
    // from the list is preferential attachment.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * n * m);
    for u in 0..=(m as NodeId) {
        for v in (u + 1)..=(m as NodeId) {
            b.push(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut chosen: Vec<NodeId> = Vec::with_capacity(m);
    for v in (m + 1)..n {
        chosen.clear();
        while chosen.len() < m {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.push(v as NodeId, t);
            endpoints.push(v as NodeId);
            endpoints.push(t);
        }
    }
    b.build().expect("valid BA graph")
}

/// BA core of `core_n` nodes (attachment degree `m`) plus `leaves` pendant
/// nodes, each attached preferentially to one core node. Node ids
/// `core_n..core_n+leaves` are the leaves.
pub fn ba_with_pendants<R: Rng>(core_n: usize, m: usize, leaves: usize, rng: &mut R) -> Graph {
    let core = barabasi_albert(core_n, m, rng);
    let n = core_n + leaves;
    let mut b = GraphBuilder::new(n).with_edge_capacity(core.num_edges() + leaves);
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(2 * core.num_edges() + leaves);
    for (u, v, _) in core.edges() {
        b.push(u, v);
        endpoints.push(u);
        endpoints.push(v);
    }
    for leaf in core_n..n {
        let t = endpoints[rng.gen_range(0..endpoints.len())];
        b.push(leaf as NodeId, t);
        endpoints.push(t);
    }
    b.build().expect("valid BA + pendants graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saphyra_graph::connectivity::Components;

    #[test]
    fn edge_count_and_connectivity() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = barabasi_albert(500, 3, &mut rng);
        assert_eq!(g.num_nodes(), 500);
        // clique(4) = 6 edges + 496 * 3
        assert_eq!(g.num_edges(), 6 + 496 * 3);
        let c = Components::compute(&g);
        assert_eq!(c.count(), 1);
        // Min degree is m.
        assert!(g.nodes().all(|v| g.degree(v) >= 3));
    }

    #[test]
    fn hubs_emerge() {
        let mut rng = StdRng::seed_from_u64(2);
        let g = barabasi_albert(2000, 2, &mut rng);
        // Power-law-ish: the max degree should far exceed the mean (4).
        assert!(g.max_degree() > 30, "max degree {}", g.max_degree());
    }

    #[test]
    fn pendants_are_leaves() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = ba_with_pendants(300, 3, 200, &mut rng);
        assert_eq!(g.num_nodes(), 500);
        for leaf in 300..500u32 {
            assert_eq!(g.degree(leaf), 1, "leaf {leaf}");
        }
        let c = Components::compute(&g);
        assert_eq!(c.count(), 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = barabasi_albert(100, 2, &mut StdRng::seed_from_u64(7));
        let b = barabasi_albert(100, 2, &mut StdRng::seed_from_u64(7));
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
    }
}
