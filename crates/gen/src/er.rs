//! Erdős–Rényi random graphs.

use rand::Rng;
use saphyra_graph::{Graph, GraphBuilder, NodeId};

/// `G(n, m)`: exactly `m` distinct uniform edges (rejection sampling; `m`
/// must leave the graph simple).
pub fn gnm<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    assert!(n >= 2, "need at least two nodes");
    let max_edges = n as u64 * (n as u64 - 1) / 2;
    assert!(
        (m as u64) <= max_edges,
        "m={m} exceeds the {max_edges} possible edges"
    );
    // Rejection sampling is fine while m is far below max_edges; fall back
    // to dense enumeration otherwise.
    if (m as u64) * 3 > max_edges {
        return gnm_dense(n, m, rng);
    }
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::new(n).with_edge_capacity(m);
    while seen.len() < m {
        let u = rng.gen_range(0..n as NodeId);
        let v = rng.gen_range(0..n as NodeId);
        if u == v {
            continue;
        }
        let key = if u < v { (u, v) } else { (v, u) };
        if seen.insert(key) {
            b.push(key.0, key.1);
        }
    }
    b.build().expect("valid ER graph")
}

/// Dense fallback: partial Fisher–Yates over all pairs.
fn gnm_dense<R: Rng>(n: usize, m: usize, rng: &mut R) -> Graph {
    let mut pairs: Vec<(NodeId, NodeId)> = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            pairs.push((u, v));
        }
    }
    for i in 0..m {
        let j = rng.gen_range(i..pairs.len());
        pairs.swap(i, j);
    }
    GraphBuilder::new(n)
        .edges(pairs.into_iter().take(m))
        .build()
        .expect("valid dense ER graph")
}

/// `G(n, p)`: each pair independently with probability `p` (O(n²); use for
/// small graphs / tests only).
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p));
    let mut b = GraphBuilder::new(n);
    for u in 0..n as NodeId {
        for v in (u + 1)..n as NodeId {
            if rng.gen::<f64>() < p {
                b.push(u, v);
            }
        }
    }
    b.build().expect("valid Gnp graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = gnm(100, 300, &mut rng);
        assert_eq!(g.num_nodes(), 100);
        assert_eq!(g.num_edges(), 300);
    }

    #[test]
    fn gnm_dense_path() {
        let mut rng = StdRng::seed_from_u64(2);
        // 10 nodes -> 45 pairs; ask for 40 (dense branch).
        let g = gnm(10, 40, &mut rng);
        assert_eq!(g.num_edges(), 40);
    }

    #[test]
    fn gnm_complete() {
        let mut rng = StdRng::seed_from_u64(3);
        let g = gnm(8, 28, &mut rng);
        assert_eq!(g.num_edges(), 28);
        assert_eq!(g.max_degree(), 7);
    }

    #[test]
    fn gnp_expected_density() {
        let mut rng = StdRng::seed_from_u64(4);
        let g = gnp(200, 0.1, &mut rng);
        let expect = 0.1 * (200.0 * 199.0 / 2.0);
        let got = g.num_edges() as f64;
        assert!(
            (got - expect).abs() < 0.15 * expect,
            "got {got}, expect {expect}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g1 = gnm(50, 100, &mut StdRng::seed_from_u64(9));
        let g2 = gnm(50, 100, &mut StdRng::seed_from_u64(9));
        let e1: Vec<_> = g1.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_rejects_impossible_m() {
        gnm(4, 7, &mut StdRng::seed_from_u64(0));
    }
}
