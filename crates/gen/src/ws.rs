//! Watts–Strogatz small-world graphs (ring lattice with rewiring).

use rand::Rng;
use saphyra_graph::{Graph, GraphBuilder, NodeId};

/// Watts–Strogatz: ring of `n` nodes, each joined to its `k/2` clockwise
/// neighbors (`k` even), every edge rewired with probability `beta` to a
/// uniform non-duplicate target.
pub fn watts_strogatz<R: Rng>(n: usize, k: usize, beta: f64, rng: &mut R) -> Graph {
    assert!(
        k >= 2 && k.is_multiple_of(2) && n > k,
        "need even k with n > k"
    );
    assert!((0.0..=1.0).contains(&beta));
    let mut adj: Vec<std::collections::BTreeSet<NodeId>> =
        vec![std::collections::BTreeSet::new(); n];
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            adj[u].insert(v as NodeId);
            adj[v].insert(u as NodeId);
        }
    }
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            if rng.gen::<f64>() >= beta {
                continue;
            }
            // Rewire u-v to u-w.
            if !adj[u].remove(&(v as NodeId)) {
                continue; // already rewired away from the other side
            }
            adj[v].remove(&(u as NodeId));
            let mut w;
            loop {
                w = rng.gen_range(0..n as NodeId);
                if w as usize != u && !adj[u].contains(&w) {
                    break;
                }
            }
            adj[u].insert(w);
            adj[w as usize].insert(u as NodeId);
        }
    }
    let mut b = GraphBuilder::new(n);
    for (u, set) in adj.iter().enumerate() {
        for &v in set {
            if (u as NodeId) < v {
                b.push(u as NodeId, v);
            }
        }
    }
    b.build().expect("valid WS graph")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saphyra_graph::diameter::exact_diameter;

    #[test]
    fn beta_zero_is_ring_lattice() {
        let mut rng = StdRng::seed_from_u64(1);
        let g = watts_strogatz(30, 4, 0.0, &mut rng);
        assert_eq!(g.num_edges(), 30 * 2);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        let ring = watts_strogatz(200, 4, 0.0, &mut StdRng::seed_from_u64(2));
        let small = watts_strogatz(200, 4, 0.3, &mut StdRng::seed_from_u64(2));
        assert!(exact_diameter(&small) < exact_diameter(&ring));
    }

    #[test]
    fn edge_count_preserved_by_rewiring() {
        let g = watts_strogatz(100, 6, 0.5, &mut StdRng::seed_from_u64(3));
        assert_eq!(g.num_edges(), 100 * 3);
    }
}
