//! Seeded violation: a result folded in `HashMap` iteration order, which
//! varies per process and would break response byte-identity.

use std::collections::HashMap;

pub fn checksum(scores: &HashMap<u32, f64>) -> f64 {
    let mut acc = 0.0;
    for (k, v) in scores.iter() {
        acc = acc * 31.0 + *k as f64 + v;
    }
    acc
}
