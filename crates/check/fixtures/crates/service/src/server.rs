//! Seeded violation: `unwrap` (and indexing) on the request path — one
//! malformed body panics a compute worker.

pub fn handle(body: &str) -> usize {
    let parsed: Option<usize> = body.trim().parse().ok();
    let n = parsed.unwrap();
    let bytes = body.as_bytes();
    n + bytes[0] as usize
}
