//! Seeded violation: two functions acquire the same pair of locks in
//! opposite orders — a textbook ABBA deadlock.

use std::sync::Mutex;

pub struct State {
    pub a: Mutex<u32>,
    pub b: Mutex<u32>,
}

pub fn forward(s: &State) {
    let ga = s.a.lock().unwrap();
    let mut gb = s.b.lock().unwrap();
    *gb += *ga;
}

pub fn backward(s: &State) {
    let gb = s.b.lock().unwrap();
    let mut ga = s.a.lock().unwrap();
    *ga += *gb;
}
