//! Seeded violation: an `unsafe` block with no adjacent `// SAFETY:`
//! justification.

pub fn reinterpret(v: &[u8; 4]) -> u32 {
    unsafe { std::ptr::read_unaligned(v.as_ptr().cast::<u32>()) }
}
