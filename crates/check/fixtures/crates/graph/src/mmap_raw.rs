//! Seeded violation: a raw `mmap(2)` FFI call with no adjacent
//! `// SAFETY:` justification — the exact hazard the zero-copy snapshot
//! path must never reintroduce.

pub fn map_file(fd: i32, len: usize) -> *mut core::ffi::c_void {
    unsafe { mmap(core::ptr::null_mut(), len, 1, 2, fd, 0) }
}

extern "C" {
    fn mmap(
        addr: *mut core::ffi::c_void,
        len: usize,
        prot: i32,
        flags: i32,
        fd: i32,
        off: i64,
    ) -> *mut core::ffi::c_void;
}
