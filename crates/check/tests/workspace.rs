//! The shipped `check/baseline.toml` exactly matches the workspace's
//! current findings: zero new, zero stale. This is the test that keeps
//! the allowlist honest — burning down a finding without regenerating the
//! baseline fails here, as does sneaking in a new violation.

use saphyra_check::baseline::Baseline;
use saphyra_check::{analyze, baseline_path, default_root, Finding};

#[test]
fn shipped_baseline_exactly_matches_findings() {
    let root = default_root();
    let analysis = analyze(&root).expect("workspace analysis");
    assert!(analysis.files_scanned > 50, "scan missed the workspace?");
    let baseline = Baseline::load(&baseline_path(&root)).expect("baseline");
    let delta = baseline.compare(&analysis.findings);
    assert!(
        delta.is_clean(),
        "baseline drift — new: {:?}, stale: {:?}",
        delta.new,
        delta.stale
    );
}

/// An injected violation beyond the allowed count is reported as new —
/// the `--deny-new` CI gate actually gates.
#[test]
fn injected_violation_fails_the_gate() {
    let root = default_root();
    let analysis = analyze(&root).expect("workspace analysis");
    let baseline = Baseline::load(&baseline_path(&root)).expect("baseline");
    let mut findings = analysis.findings.clone();
    findings.push(Finding {
        lint: "panic-path",
        file: "crates/service/src/server.rs".to_string(),
        line: 1,
        func: "rank".to_string(),
        pattern: "unwrap".to_string(),
        message: "injected".to_string(),
    });
    let delta = baseline.compare(&findings);
    assert_eq!(delta.new.len(), 1, "{:?}", delta.new);
    assert!(delta.stale.is_empty());
}
