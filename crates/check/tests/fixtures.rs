//! Every seeded violation under `fixtures/` is detected by its lint.
//!
//! The fixture tree mimics the workspace layout (`crates/<name>/src/...`)
//! because lint scoping is path-based; the files are never compiled.

use std::path::PathBuf;

use saphyra_check::scan::SourceFile;
use saphyra_check::{run_lints, Finding};

fn fixtures_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn findings() -> Vec<Finding> {
    let rels = [
        "crates/core/src/hash_iter.rs",
        "crates/service/src/deadlock.rs",
        "crates/service/src/server.rs",
        "crates/service/src/raw.rs",
        "crates/graph/src/mmap_raw.rs",
    ];
    let files: Vec<SourceFile> = rels
        .iter()
        .map(|rel| SourceFile::load(&fixtures_root(), rel).expect(rel))
        .collect();
    run_lints(&files, None)
}

fn with(lint: &str, pred: impl Fn(&Finding) -> bool) -> Vec<Finding> {
    findings()
        .into_iter()
        .filter(|f| f.lint == lint && pred(f))
        .collect()
}

#[test]
fn seeded_hash_iteration_detected() {
    let hits = with("determinism", |f| {
        f.file == "crates/core/src/hash_iter.rs" && f.pattern == "hash-iteration"
    });
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].func, "checksum");
}

#[test]
fn seeded_lock_cycle_detected() {
    let hits = with("lock-order", |f| f.pattern.starts_with("cycle:"));
    assert!(!hits.is_empty(), "ABBA cycle in deadlock.rs not found");
    assert!(
        hits.iter()
            .all(|f| f.pattern.contains("deadlock.a") && f.pattern.contains("deadlock.b")),
        "{hits:?}"
    );
}

#[test]
fn seeded_hot_path_unwrap_detected() {
    let unwraps = with("panic-path", |f| {
        f.file == "crates/service/src/server.rs" && f.pattern == "unwrap"
    });
    assert_eq!(unwraps.len(), 1, "{unwraps:?}");
    assert_eq!(unwraps[0].func, "handle");
    let indexes = with("panic-path", |f| {
        f.file == "crates/service/src/server.rs" && f.pattern == "index"
    });
    assert_eq!(indexes.len(), 1, "{indexes:?}");
}

#[test]
fn seeded_unannotated_unsafe_detected() {
    let hits = with("unsafe-audit", |f| f.file == "crates/service/src/raw.rs");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].func, "reinterpret");
}

/// The zero-copy snapshot path's specific hazard: a raw `mmap` call whose
/// `unsafe` block carries no `// SAFETY:` justification must be caught —
/// the real bindings in `crates/graph/src/mmap.rs` stay clean only
/// because this lint keeps them honest.
#[test]
fn seeded_unannotated_mmap_call_detected() {
    let hits = with("unsafe-audit", |f| f.file == "crates/graph/src/mmap_raw.rs");
    assert_eq!(hits.len(), 1, "{hits:?}");
    assert_eq!(hits[0].func, "map_file");
    assert_eq!(hits[0].pattern, "missing-safety-comment");
}

/// The fixture set produces exactly the seeded findings and nothing else —
/// guards against the lints over-firing as much as under-firing.
#[test]
fn fixtures_produce_no_other_findings() {
    let extra: Vec<Finding> = findings()
        .into_iter()
        .filter(|f| {
            !matches!(
                (f.lint, f.pattern.as_str()),
                ("determinism", "hash-iteration")
                    | ("panic-path", "unwrap")
                    | ("panic-path", "index")
                    | ("unsafe-audit", "missing-safety-comment")
            ) && !f.pattern.starts_with("cycle:")
        })
        .collect();
    assert!(extra.is_empty(), "{extra:?}");
}
