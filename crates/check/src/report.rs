//! Finding output: human text and machine-readable JSON.

use crate::baseline::Delta;
use crate::Finding;

pub fn text(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        out.push_str(&format!(
            "{}:{}: [{}] {} (fn {}, pattern {})\n",
            f.file, f.line, f.lint, f.message, f.func, f.pattern
        ));
    }
    out
}

pub fn json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"lint\":\"{}\",\"file\":\"{}\",\"line\":{},\"func\":\"{}\",\"pattern\":\"{}\",\"message\":\"{}\"}}",
            esc(f.lint),
            esc(&f.file),
            f.line,
            esc(&f.func),
            esc(&f.pattern),
            esc(&f.message)
        ));
    }
    out.push_str("\n]\n");
    out
}

pub fn delta_text(delta: &Delta) -> String {
    let mut out = String::new();
    for (key, allowed, found) in &delta.new {
        out.push_str(&format!(
            "NEW   {key}: found {found}, baseline allows {allowed}\n"
        ));
    }
    for (key, allowed, found) in &delta.stale {
        out.push_str(&format!(
            "STALE {key}: baseline allows {allowed}, found {found} — remove or shrink the entry\n"
        ));
    }
    out
}

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes() {
        let f = Finding {
            lint: "panic-path",
            file: "a\"b.rs".to_string(),
            line: 3,
            func: "f".to_string(),
            pattern: "unwrap".to_string(),
            message: "line\nbreak".to_string(),
        };
        let j = json(&[f]);
        assert!(j.contains("a\\\"b.rs"));
        assert!(j.contains("line\\nbreak"));
    }
}
