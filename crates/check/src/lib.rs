//! `saphyra-check` — the workspace invariant analyzer.
//!
//! An offline, dependency-free static-analysis pass over this repo's own
//! sources (a small token-level scanner, no syn/rustc) enforcing the four
//! invariant families the determinism contract rests on:
//!
//! | lint          | scope                          | guards against |
//! |---------------|--------------------------------|----------------|
//! | `determinism` | `core`/`stats`/`graph`         | hash-order / wall-clock / thread-id / pointer values reaching results |
//! | `lock-order`  | `crates/service`               | deadlocks: nesting cycles & hierarchy contradictions |
//! | `unsafe-audit`| whole workspace incl. `vendor` | `unsafe` without a `// SAFETY:` justification |
//! | `panic-path`  | `server.rs`/`shard.rs`/`http.rs` | `unwrap`/`expect`/indexing that can kill a worker |
//!
//! Pre-existing debt lives in `check/baseline.toml`; the lock hierarchy is
//! declared in `check/invariants.toml`. `cargo run -p saphyra-check --
//! --deny-new` fails on any unbaselined finding *and* any stale baseline
//! entry, so the allowlist only ratchets down.

pub mod baseline;
pub mod lints;
pub mod report;
pub mod scan;
pub mod toml_min;

use std::path::{Path, PathBuf};

use scan::SourceFile;

/// One lint violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub lint: &'static str,
    /// Workspace-relative path with `/` separators.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Enclosing function name, or `<file>` for item-level code.
    pub func: String,
    /// Stable pattern key used for baselining (e.g. `unwrap`, `cycle:a->b`).
    pub pattern: String,
    pub message: String,
}

/// Which lints apply to a workspace-relative path.
pub fn determinism_in_scope(rel: &str) -> bool {
    rel.starts_with("crates/core/src/")
        || rel.starts_with("crates/stats/src/")
        || rel.starts_with("crates/graph/src/")
}

pub fn lockorder_in_scope(rel: &str) -> bool {
    rel.starts_with("crates/service/src/")
}

pub fn panicpath_in_scope(rel: &str) -> bool {
    matches!(
        rel,
        "crates/service/src/server.rs"
            | "crates/service/src/shard.rs"
            | "crates/service/src/http.rs"
    )
}

/// The unsafe audit covers everything we compile, vendor stubs included.
pub fn unsafe_in_scope(_rel: &str) -> bool {
    true
}

/// Result of analyzing a source tree.
#[derive(Debug)]
pub struct Analysis {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
}

/// Scans every `.rs` file under the workspace's source roots.
pub fn workspace_sources(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut rels = Vec::new();
    for dir in source_roots(root)? {
        collect_rs(root, &dir, &mut rels)?;
    }
    rels.sort();
    rels.iter()
        .map(|rel| SourceFile::load(root, rel).map_err(|e| format!("{rel}: {e}")))
        .collect()
}

fn source_roots(root: &Path) -> Result<Vec<String>, String> {
    let mut roots = vec!["src".to_string()];
    for parent in ["crates", "vendor"] {
        let dir = root.join(parent);
        let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| e.to_string())?;
            if entry.path().join("src").is_dir() {
                let name = entry.file_name().to_string_lossy().to_string();
                roots.push(format!("{parent}/{name}/src"));
            }
        }
    }
    roots.sort();
    Ok(roots)
}

fn collect_rs(root: &Path, rel_dir: &str, out: &mut Vec<String>) -> Result<(), String> {
    let dir = root.join(rel_dir);
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name().to_string_lossy().to_string();
        let rel = format!("{rel_dir}/{name}");
        let path = entry.path();
        if path.is_dir() {
            collect_rs(root, &rel, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Runs all four lint families over pre-scanned sources.
pub fn run_lints(
    files: &[SourceFile],
    hierarchy: Option<&lints::lockorder::Hierarchy>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for sf in files {
        if determinism_in_scope(&sf.rel) {
            findings.extend(lints::determinism::run(sf));
        }
        if unsafe_in_scope(&sf.rel) {
            findings.extend(lints::unsafe_audit::run(sf));
        }
        if panicpath_in_scope(&sf.rel) {
            findings.extend(lints::panicpath::run(sf));
        }
    }
    let service: Vec<&SourceFile> = files
        .iter()
        .filter(|sf| lockorder_in_scope(&sf.rel))
        .collect();
    findings.extend(lints::lockorder::run(&service, hierarchy));
    findings.sort_by(|a, b| {
        (&a.file, a.line, a.lint, &a.pattern).cmp(&(&b.file, b.line, b.lint, &b.pattern))
    });
    findings
}

/// Full workspace analysis: scan sources, load the declared hierarchy,
/// run every lint.
pub fn analyze(root: &Path) -> Result<Analysis, String> {
    let files = workspace_sources(root)?;
    let hierarchy = load_hierarchy(root)?;
    let findings = run_lints(&files, hierarchy.as_ref());
    Ok(Analysis {
        files_scanned: files.len(),
        findings,
    })
}

pub fn load_hierarchy(root: &Path) -> Result<Option<lints::lockorder::Hierarchy>, String> {
    let path = invariants_path(root);
    match std::fs::read_to_string(&path) {
        Ok(text) => lints::lockorder::parse_hierarchy(&text)
            .map(Some)
            .map_err(|e| format!("{}: {e}", path.display())),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
        Err(e) => Err(format!("{}: {e}", path.display())),
    }
}

pub fn baseline_path(root: &Path) -> PathBuf {
    root.join("check/baseline.toml")
}

pub fn invariants_path(root: &Path) -> PathBuf {
    root.join("check/invariants.toml")
}

/// The workspace root when running via cargo (`crates/check/../..`).
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}
