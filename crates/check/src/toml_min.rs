//! A minimal TOML subset reader/writer — just enough for the baseline and
//! invariants files, keeping the crate dependency-free.
//!
//! Supported grammar: `#` comments, blank lines, `[[table]]` array-of-table
//! headers, and `key = value` pairs where value is a double-quoted string
//! (with `\"` / `\\` / `\n` escapes) or an integer. That is the entire
//! format `check/baseline.toml` and `check/invariants.toml` use; anything
//! else is a parse error, not silently ignored.

use std::collections::BTreeMap;
use std::fmt;

#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Str(String),
    Int(i64),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            Value::Str(_) => None,
        }
    }
}

/// One `[[name]]` entry with its key/value pairs.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub entries: BTreeMap<String, Value>,
}

impl Table {
    pub fn str_field(&self, key: &str) -> Option<&str> {
        self.entries.get(key).and_then(Value::as_str)
    }
    pub fn int_field(&self, key: &str) -> Option<i64> {
        self.entries.get(key).and_then(Value::as_int)
    }
}

#[derive(Debug)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

pub fn parse(text: &str) -> Result<Vec<Table>, ParseError> {
    let mut tables: Vec<Table> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let Some(name) = rest.strip_suffix("]]") else {
                return Err(ParseError {
                    line: lineno,
                    message: format!("malformed table header: {line}"),
                });
            };
            tables.push(Table {
                name: name.trim().to_string(),
                entries: BTreeMap::new(),
            });
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(ParseError {
                line: lineno,
                message: format!("expected `key = value`: {line}"),
            });
        };
        let key = line[..eq].trim().to_string();
        let value = parse_value(line[eq + 1..].trim()).map_err(|m| ParseError {
            line: lineno,
            message: m,
        })?;
        let Some(table) = tables.last_mut() else {
            return Err(ParseError {
                line: lineno,
                message: "key/value outside any [[table]]".to_string(),
            });
        };
        table.entries.insert(key, value);
    }
    Ok(tables)
}

fn parse_value(s: &str) -> Result<Value, String> {
    if let Some(body) = s.strip_prefix('"') {
        let Some(body) = body.strip_suffix('"') else {
            return Err(format!("unterminated string: {s}"));
        };
        let mut out = String::new();
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    other => return Err(format!("bad escape \\{other:?}")),
                }
            } else {
                out.push(c);
            }
        }
        return Ok(Value::Str(out));
    }
    s.parse::<i64>()
        .map(Value::Int)
        .map_err(|_| format!("expected quoted string or integer: {s}"))
}

pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let text = "# header\n[[allow]]\nlint = \"panic-path\"\ncount = 3\n\n[[allow]]\nnote = \"a \\\"q\\\" here\"\n";
        let tables = parse(text).unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].str_field("lint"), Some("panic-path"));
        assert_eq!(tables[0].int_field("count"), Some(3));
        assert_eq!(tables[1].str_field("note"), Some("a \"q\" here"));
    }

    #[test]
    fn rejects_junk() {
        assert!(parse("just words\n").is_err());
        assert!(parse("[[bad\n").is_err());
        assert!(parse("k = v_unquoted\n").is_err());
        assert!(parse("orphan = 1\n").is_err());
    }
}
