//! The ratcheting allowlist: pre-existing findings live in
//! `check/baseline.toml`; anything beyond it fails, anything no longer
//! present is stale and must be removed (so the baseline only ever
//! shrinks unless a justified entry is added deliberately).
//!
//! Entries are keyed by *content* — `(lint, file, func, pattern)` with a
//! count — not by line number, so unrelated edits that shift lines do not
//! churn the file, while adding one more `unwrap()` to a baselined
//! function still fails.

use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

use crate::toml_min;
use crate::Finding;

/// Aggregation key for findings and baseline entries.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Key {
    pub lint: String,
    pub file: String,
    pub func: String,
    pub pattern: String,
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} fn {} pattern {}",
            self.lint, self.file, self.func, self.pattern
        )
    }
}

#[derive(Debug, Default)]
pub struct Baseline {
    /// key → (allowed count, justification note).
    pub entries: BTreeMap<Key, (usize, String)>,
}

/// Outcome of comparing current findings against the baseline.
#[derive(Debug, Default)]
pub struct Delta {
    /// Findings beyond the allowed count (key, allowed, found).
    pub new: Vec<(Key, usize, usize)>,
    /// Baseline entries with fewer findings than allowed (key, allowed, found).
    pub stale: Vec<(Key, usize, usize)>,
}

impl Delta {
    pub fn is_clean(&self) -> bool {
        self.new.is_empty() && self.stale.is_empty()
    }
}

pub fn aggregate(findings: &[Finding]) -> BTreeMap<Key, usize> {
    let mut out = BTreeMap::new();
    for f in findings {
        *out.entry(Key {
            lint: f.lint.to_string(),
            file: f.file.clone(),
            func: f.func.clone(),
            pattern: f.pattern.clone(),
        })
        .or_insert(0) += 1;
    }
    out
}

impl Baseline {
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Baseline::default()),
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        Baseline::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    pub fn parse(text: &str) -> Result<Baseline, String> {
        let tables = toml_min::parse(text).map_err(|e| e.to_string())?;
        let mut entries = BTreeMap::new();
        for t in tables {
            if t.name != "allow" {
                return Err(format!("unexpected table [[{}]]", t.name));
            }
            let field = |k: &str| {
                t.str_field(k)
                    .map(str::to_string)
                    .ok_or_else(|| format!("[[allow]] entry missing `{k}`"))
            };
            let key = Key {
                lint: field("lint")?,
                file: field("file")?,
                func: field("func")?,
                pattern: field("pattern")?,
            };
            let count = t
                .int_field("count")
                .ok_or_else(|| "[[allow]] entry missing `count`".to_string())?;
            let note = t.str_field("note").unwrap_or("").to_string();
            if entries
                .insert(key.clone(), (count as usize, note))
                .is_some()
            {
                return Err(format!("duplicate baseline entry: {key}"));
            }
        }
        Ok(Baseline { entries })
    }

    /// Compares current findings to the allowlist, both directions.
    pub fn compare(&self, findings: &[Finding]) -> Delta {
        let current = aggregate(findings);
        let mut delta = Delta::default();
        for (key, &found) in &current {
            let allowed = self.entries.get(key).map(|(c, _)| *c).unwrap_or(0);
            if found > allowed {
                delta.new.push((key.clone(), allowed, found));
            }
        }
        for (key, (allowed, _)) in &self.entries {
            let found = current.get(key).copied().unwrap_or(0);
            if found < *allowed {
                delta.stale.push((key.clone(), *allowed, found));
            }
        }
        delta
    }

    /// Renders a baseline that exactly matches `findings`, carrying over
    /// notes from `self` for keys that survive.
    pub fn render_from(&self, findings: &[Finding]) -> String {
        let mut out = String::from(
            "# saphyra-check allowlist baseline.\n\
             #\n\
             # Each entry permits `count` findings for (lint, file, func, pattern);\n\
             # anything beyond it fails `--deny-new`, and entries no longer matched\n\
             # are reported stale so the ratchet only moves one way. Regenerate with\n\
             # `cargo run -p saphyra-check -- --write-baseline` after burning down a\n\
             # finding; add `note` to justify entries that are deliberate.\n",
        );
        for (key, found) in aggregate(findings) {
            let note = self
                .entries
                .get(&key)
                .map(|(_, n)| n.clone())
                .unwrap_or_default();
            out.push_str("\n[[allow]]\n");
            out.push_str(&format!("lint = \"{}\"\n", toml_min::escape(&key.lint)));
            out.push_str(&format!("file = \"{}\"\n", toml_min::escape(&key.file)));
            out.push_str(&format!("func = \"{}\"\n", toml_min::escape(&key.func)));
            out.push_str(&format!(
                "pattern = \"{}\"\n",
                toml_min::escape(&key.pattern)
            ));
            out.push_str(&format!("count = {found}\n"));
            if !note.is_empty() {
                out.push_str(&format!("note = \"{}\"\n", toml_min::escape(&note)));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, file: &str, func: &str, pattern: &str) -> Finding {
        Finding {
            lint,
            file: file.to_string(),
            line: 1,
            func: func.to_string(),
            pattern: pattern.to_string(),
            message: String::new(),
        }
    }

    #[test]
    fn new_and_stale_both_detected() {
        let base = Baseline::parse(
            "[[allow]]\nlint = \"panic-path\"\nfile = \"a.rs\"\nfunc = \"f\"\npattern = \"unwrap\"\ncount = 1\n\
             [[allow]]\nlint = \"panic-path\"\nfile = \"b.rs\"\nfunc = \"g\"\npattern = \"index\"\ncount = 2\n",
        )
        .unwrap();
        let findings = vec![
            finding("panic-path", "a.rs", "f", "unwrap"),
            finding("panic-path", "a.rs", "f", "unwrap"),
        ];
        let delta = base.compare(&findings);
        assert_eq!(delta.new.len(), 1, "a.rs went 1 → 2");
        assert_eq!(delta.stale.len(), 1, "b.rs entry no longer matches");
        assert!(!delta.is_clean());
    }

    #[test]
    fn exact_match_is_clean_and_round_trips() {
        let findings = vec![
            finding("determinism", "c.rs", "h", "hash-iteration"),
            finding("determinism", "c.rs", "h", "hash-iteration"),
        ];
        let rendered = Baseline::default().render_from(&findings);
        let base = Baseline::parse(&rendered).unwrap();
        assert!(base.compare(&findings).is_clean());
        assert!(!base.compare(&[]).is_clean());
    }

    #[test]
    fn notes_survive_regeneration() {
        let base = Baseline::parse(
            "[[allow]]\nlint = \"l\"\nfile = \"f.rs\"\nfunc = \"x\"\npattern = \"p\"\ncount = 9\nnote = \"why\"\n",
        )
        .unwrap();
        let rendered = base.render_from(&[finding("l", "f.rs", "x", "p")]);
        assert!(rendered.contains("note = \"why\""));
        assert!(rendered.contains("count = 1"));
    }
}
