//! CLI for the workspace invariant analyzer.
//!
//! ```text
//! cargo run -p saphyra-check                  # report; fail on new findings
//! cargo run -p saphyra-check -- --deny-new    # CI mode: also fail on stale entries
//! cargo run -p saphyra-check -- --write-baseline
//! cargo run -p saphyra-check -- --format json
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use saphyra_check::baseline::Baseline;
use saphyra_check::{analyze, baseline_path, default_root, report};

struct Args {
    root: PathBuf,
    deny_new: bool,
    write_baseline: bool,
    json: bool,
    baseline: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: default_root(),
        deny_new: false,
        write_baseline: false,
        json: false,
        baseline: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-new" => args.deny_new = true,
            "--write-baseline" => args.write_baseline = true,
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a path")?);
            }
            "--baseline" => {
                args.baseline = Some(PathBuf::from(it.next().ok_or("--baseline needs a path")?));
            }
            "--format" => match it.next().as_deref() {
                Some("json") => args.json = true,
                Some("text") => args.json = false,
                other => return Err(format!("--format expects text|json, got {other:?}")),
            },
            "--help" | "-h" => {
                return Err(
                    "usage: saphyra-check [--root DIR] [--baseline FILE] [--deny-new] \
                     [--write-baseline] [--format text|json]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let analysis = match analyze(&args.root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("saphyra-check: {e}");
            return ExitCode::from(2);
        }
    };
    let base_path = args
        .baseline
        .clone()
        .unwrap_or_else(|| baseline_path(&args.root));
    let base = match Baseline::load(&base_path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("saphyra-check: baseline: {e}");
            return ExitCode::from(2);
        }
    };

    if args.write_baseline {
        let rendered = base.render_from(&analysis.findings);
        if let Err(e) = std::fs::write(&base_path, rendered) {
            eprintln!("saphyra-check: write {}: {e}", base_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} findings across {} files scanned)",
            base_path.display(),
            analysis.findings.len(),
            analysis.files_scanned
        );
        return ExitCode::SUCCESS;
    }

    if args.json {
        print!("{}", report::json(&analysis.findings));
    }

    let delta = base.compare(&analysis.findings);
    if !delta.new.is_empty() || !delta.stale.is_empty() {
        eprint!("{}", report::delta_text(&delta));
    }
    // Show the offending sites for anything new.
    if !delta.new.is_empty() && !args.json {
        let new_keys: Vec<_> = delta.new.iter().map(|(k, _, _)| k).collect();
        let offenders: Vec<_> = analysis
            .findings
            .iter()
            .filter(|f| {
                new_keys.iter().any(|k| {
                    k.lint == f.lint
                        && k.file == f.file
                        && k.func == f.func
                        && k.pattern == f.pattern
                })
            })
            .cloned()
            .collect();
        eprint!("{}", report::text(&offenders));
    }

    let fail = !delta.new.is_empty() || (args.deny_new && !delta.stale.is_empty());
    if fail {
        eprintln!(
            "saphyra-check: FAILED — {} new, {} stale (baseline {})",
            delta.new.len(),
            delta.stale.len(),
            base_path.display()
        );
        ExitCode::FAILURE
    } else {
        // In JSON mode stdout is machine-readable; keep the summary off it.
        let summary = format!(
            "saphyra-check: ok — {} findings, all baselined; {} files scanned",
            analysis.findings.len(),
            analysis.files_scanned
        );
        if args.json {
            eprintln!("{summary}");
        } else {
            println!("{summary}");
        }
        ExitCode::SUCCESS
    }
}
