pub mod determinism;
pub mod lockorder;
pub mod panicpath;
pub mod unsafe_audit;
