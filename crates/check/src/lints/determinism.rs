//! Determinism lints for estimation code.
//!
//! The service's contract is that solo == batched == sharded responses are
//! byte-identical, so anything order- or wall-clock-dependent inside the
//! estimation crates (`core`, `stats`, `graph`) is a latent bug:
//!
//! * `hash-iteration` — iterating a `HashMap`/`HashSet` (`for .. in`,
//!   `.iter()`, `.keys()`, `.values()`, `.drain()`, `.retain()`,
//!   `.into_iter()`): iteration order varies per process, so any value
//!   derived from it can change bytes across runs or shard layouts.
//!   Membership-only use (`insert`/`contains`/`get`/`len`) is fine and
//!   not flagged.
//! * `instant-now` / `system-time` — wall-clock reads.
//! * `thread-id` — `thread::current().id()` (varies with pool layout).
//! * `pointer-key` — `as *const` / `as *mut` / `.as_ptr()` casts, the
//!   usual ingredient of address-keyed maps whose order is ASLR-dependent.
//!
//! Test code is *included*: a hash-order-dependent assertion is a flaky
//! test, and the byte-identity suites are themselves part of the contract.

use std::collections::BTreeSet;

use crate::scan::SourceFile;
use crate::Finding;

pub const LINT: &str = "determinism";

const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "keys",
    "values",
    "values_mut",
    "drain",
    "retain",
];

pub fn run(sf: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let toks = &sf.toks;
    let hash_idents = hash_bound_idents(sf);

    for i in 0..toks.len() {
        let t = &toks[i];
        // Wall clock: Instant::now / SystemTime (any use).
        if t.is("Instant") && seq(toks, i + 1, &[":", ":", "now"]) {
            findings.push(finding(
                sf,
                i,
                "instant-now",
                "wall-clock read (Instant::now)",
            ));
        }
        if t.is("SystemTime") {
            findings.push(finding(
                sf,
                i,
                "system-time",
                "wall-clock read (SystemTime)",
            ));
        }
        // thread::current().id()
        if t.is("current")
            && i >= 3
            && toks[i - 1].is(":")
            && toks[i - 2].is(":")
            && toks[i - 3].is("thread")
            && seq(toks, i + 1, &["(", ")", ".", "id"])
        {
            findings.push(finding(sf, i, "thread-id", "thread id leaks pool layout"));
        }
        // Pointer-as-key ingredients: `as *const` / `as *mut` / `.as_ptr()`.
        if t.is("as") && seq(toks, i + 1, &["*", "const"])
            || t.is("as") && seq(toks, i + 1, &["*", "mut"])
        {
            findings.push(finding(
                sf,
                i,
                "pointer-key",
                "raw-pointer cast (address-dependent value)",
            ));
        }
        if t.is("as_ptr") && i >= 1 && toks[i - 1].is(".") && seq(toks, i + 1, &["(", ")"]) {
            findings.push(finding(
                sf,
                i,
                "pointer-key",
                "pointer extraction (address-dependent value)",
            ));
        }
        // Iteration over a known HashMap/HashSet binding, visible either
        // from the enclosing function's own `let`s or file-level items.
        let visible = |name: &str| {
            hash_idents.contains(&(sf.fn_name_at(i), name.to_string()))
                || hash_idents.contains(&("<file>".to_string(), name.to_string()))
        };
        if visible(&t.text) {
            // `x.iter()` and friends.
            if seq_any_method(toks, i) {
                findings.push(finding(
                    sf,
                    i,
                    "hash-iteration",
                    &format!("iteration over hash-ordered `{}`", t.text),
                ));
            }
            // `for pat in [&[mut]] x` — x terminates the iterable expression.
            if is_for_iterable(toks, i) {
                findings.push(finding(
                    sf,
                    i,
                    "hash-iteration",
                    &format!("for-loop over hash-ordered `{}`", t.text),
                ));
            }
        }
    }
    findings
}

/// `x . iter (` and friends immediately after token `i`.
fn seq_any_method(toks: &[crate::scan::Tok], i: usize) -> bool {
    if !toks.get(i + 1).is_some_and(|t| t.is(".")) {
        return false;
    }
    let Some(m) = toks.get(i + 2) else {
        return false;
    };
    ITER_METHODS.contains(&m.text.as_str()) && toks.get(i + 3).is_some_and(|t| t.is("("))
}

/// True when token `i` is the iterable of a `for .. in <expr>` where the
/// expression is just `x`, `&x` or `&mut x` followed by the loop `{`.
fn is_for_iterable(toks: &[crate::scan::Tok], i: usize) -> bool {
    if !toks.get(i + 1).is_some_and(|t| t.is("{")) {
        return false;
    }
    let mut j = i;
    while j > 0 && (toks[j - 1].is("&") || toks[j - 1].is("mut")) {
        j -= 1;
    }
    j > 0 && toks[j - 1].is("in")
}

/// Identifiers bound to a `HashMap`/`HashSet`, keyed by the scope they are
/// visible from: either `let [mut] x = ... Hash{Map,Set} ...;` or a
/// `x: Hash{Map,Set}<...>` type ascription (let, field, or param). The
/// scope is the enclosing function's name, or `<file>` for item-level
/// bindings (struct fields), so a `counts` HashMap in one test cannot
/// taint an identically named BTreeMap in another.
fn hash_bound_idents(sf: &SourceFile) -> BTreeSet<(String, String)> {
    let toks = &sf.toks;
    let mut out = BTreeSet::new();
    for i in 0..toks.len() {
        if toks[i].is("let") {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is("mut")) {
                j += 1;
            }
            let Some(name) = toks.get(j) else { continue };
            if !name
                .text
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
            {
                continue;
            }
            // Scan the initializer up to `;` for a hash type mention.
            let mut k = j + 1;
            let mut depth = 0i32;
            while k < toks.len() {
                let t = &toks[k];
                if t.is("(") || t.is("[") || t.is("{") {
                    depth += 1;
                } else if t.is(")") || t.is("]") || t.is("}") {
                    depth -= 1;
                } else if depth == 0 && t.is(";") {
                    break;
                } else if t.is("HashMap") || t.is("HashSet") {
                    out.insert((sf.fn_name_at(j), name.text.clone()));
                    break;
                }
                k += 1;
            }
        }
        // `name : [& [mut]] [path ::] Hash{Map,Set}` ascriptions.
        if (toks[i].is("HashMap") || toks[i].is("HashSet")) && i >= 2 {
            let mut j = i;
            // Walk back over `std :: collections ::`-style paths.
            while j >= 2 && toks[j - 1].is(":") && toks[j - 2].is(":") {
                j -= 3; // skip `ident ::`
            }
            // ... then reference sigils: `&`, `&mut`, `&'a` (a lifetime
            // tokenizes as `'` + ident).
            loop {
                if j >= 1 && (toks[j - 1].is("&") || toks[j - 1].is("mut")) {
                    j -= 1;
                } else if j >= 2 && toks[j - 2].is("'") {
                    j -= 2;
                } else {
                    break;
                }
            }
            if j >= 2 && toks[j - 1].is(":") && !toks[j - 2].is(":") {
                out.insert((sf.fn_name_at(j - 2), toks[j - 2].text.clone()));
            }
        }
    }
    out
}

fn seq(toks: &[crate::scan::Tok], from: usize, expect: &[&str]) -> bool {
    expect
        .iter()
        .enumerate()
        .all(|(k, e)| toks.get(from + k).is_some_and(|t| t.is(e)))
}

fn finding(sf: &SourceFile, i: usize, pattern: &str, message: &str) -> Finding {
    Finding {
        lint: LINT,
        file: sf.rel.clone(),
        line: sf.toks[i].line,
        func: sf.fn_name_at(i),
        pattern: pattern.to_string(),
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Finding> {
        run(&SourceFile::parse("fake/core.rs", src))
    }

    #[test]
    fn flags_iteration_not_membership() {
        let src = "fn f() {\n\
                   let mut m = std::collections::HashMap::new();\n\
                   m.insert(1, 2);\n\
                   let _ = m.get(&1);\n\
                   for (k, v) in &m { println!(\"{k}{v}\"); }\n\
                   let _: Vec<_> = m.keys().collect();\n\
                   }\n";
        let f = check(src);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.pattern == "hash-iteration"));
        assert_eq!(f[0].func, "f");
    }

    #[test]
    fn flags_typed_field_iteration() {
        let src = "struct S { seen: std::collections::HashSet<u32> }\n\
                   impl S { fn g(&self) -> usize { self.seen.iter().count() } }\n";
        let f = check(src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn flags_clock_and_pointer() {
        let src = "fn f(x: &u32) -> u64 {\n\
                   let t = Instant::now();\n\
                   let _ = SystemTime::now();\n\
                   let id = std::thread::current().id();\n\
                   (x as *const u32) as u64 + t.elapsed().as_nanos() as u64\n\
                   }\n";
        let pats: Vec<_> = check(src).into_iter().map(|f| f.pattern).collect();
        assert!(pats.contains(&"instant-now".to_string()), "{pats:?}");
        assert!(pats.contains(&"system-time".to_string()));
        assert!(pats.contains(&"thread-id".to_string()));
        assert!(pats.contains(&"pointer-key".to_string()));
    }

    #[test]
    fn reference_param_ascriptions_are_tracked() {
        let src = "fn f<'a>(scores: &'a HashMap<u32, f64>, m: &mut HashSet<u8>) -> f64 {\n\
                   let mut acc = 0.0;\n\
                   for (k, v) in scores.iter() { acc += *k as f64 + v; }\n\
                   for x in m.drain() { acc += x as f64; }\n\
                   acc\n\
                   }\n";
        let f = check(src);
        assert_eq!(f.len(), 2, "{f:?}");
    }

    #[test]
    fn bindings_are_scoped_per_function() {
        // `counts` is a HashMap in `a` but a BTreeMap in `b`; only the
        // iteration inside `a` is hash-ordered.
        let src = "fn a() {\n\
                   let mut counts = std::collections::HashMap::new();\n\
                   for k in counts.keys() { println!(\"{k}\"); }\n\
                   }\n\
                   fn b() {\n\
                   let mut counts = std::collections::BTreeMap::new();\n\
                   for k in counts.keys() { println!(\"{k}\"); }\n\
                   }\n";
        let f = check(src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].func, "a");
    }

    #[test]
    fn btree_is_clean() {
        let src = "fn f() {\n\
                   let mut m = std::collections::BTreeMap::new();\n\
                   m.insert(1, 2);\n\
                   for (k, v) in &m { println!(\"{k}{v}\"); }\n\
                   }\n";
        assert!(check(src).is_empty());
    }
}
