//! Unsafe audit: every `unsafe` block / impl / fn must carry an adjacent
//! `// SAFETY:` comment stating why the invariants hold.
//!
//! "Adjacent" means: on the same line as the `unsafe` token, or in the
//! contiguous run of comment-only lines directly above it. The walk also
//! steps over intervening lines that themselves contain `unsafe` (so two
//! back-to-back `unsafe impl`s can each carry their own comment without a
//! blank line between), but any other code line breaks adjacency — a
//! SAFETY comment three statements up does not count.

use crate::scan::SourceFile;
use crate::Finding;

pub const LINT: &str = "unsafe-audit";

pub fn run(sf: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut flagged_lines = std::collections::BTreeSet::new();
    for (i, t) in sf.toks.iter().enumerate() {
        if !t.is("unsafe") {
            continue;
        }
        if !flagged_lines.insert(t.line) {
            continue; // one finding per line even with several unsafe tokens
        }
        if has_adjacent_safety(sf, t.line) {
            continue;
        }
        findings.push(Finding {
            lint: LINT,
            file: sf.rel.clone(),
            line: t.line,
            func: sf.fn_name_at(i),
            pattern: "missing-safety-comment".to_string(),
            message: "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
        });
    }
    findings
}

fn has_adjacent_safety(sf: &SourceFile, line: usize) -> bool {
    let info = |l: usize| sf.lines.get(l);
    if info(line).is_some_and(|li| li.comment.contains("SAFETY:")) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        let Some(li) = info(l) else { break };
        let comment_only = li.tokens == 0 && !li.comment.trim().is_empty();
        if comment_only {
            if li.comment.contains("SAFETY:") {
                return true;
            }
            continue;
        }
        // Step over a neighbouring unsafe line (its own comment sits above).
        let has_unsafe = sf.toks.iter().any(|t| t.line == l && t.is("unsafe"));
        if has_unsafe {
            continue;
        }
        break;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Vec<Finding> {
        run(&SourceFile::parse("r.rs", src))
    }

    #[test]
    fn annotated_block_is_clean() {
        let src = "fn f() {\n    // SAFETY: fd is owned and open.\n    unsafe { close(fd) };\n}\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn unannotated_block_is_flagged() {
        let src = "fn f() {\n    unsafe { close(fd) };\n}\n";
        let f = check(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].pattern, "missing-safety-comment");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn multiline_comment_run_counts() {
        let src = "// SAFETY: the buffer outlives the call\n// and len is checked above.\nunsafe impl Send for X {}\n";
        assert!(check(src).is_empty());
    }

    #[test]
    fn non_safety_comment_does_not_count() {
        let src = "// fds are owned for the struct's lifetime.\nunsafe impl Send for X {}\n";
        assert_eq!(check(src).len(), 1);
    }

    #[test]
    fn back_to_back_impls_each_need_their_own() {
        let src = "// SAFETY: ownership transfers with the struct.\nunsafe impl Send for X {}\nunsafe impl Sync for X {}\n";
        // The Sync impl walks over the Send line and finds Send's comment:
        // adjacency is satisfied for both.
        assert!(check(src).is_empty());
        let src2 =
            "unsafe impl Send for X {}\n// SAFETY: only for Sync.\nunsafe impl Sync for X {}\n";
        let f = check(src2);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn intervening_code_breaks_adjacency() {
        let src = "// SAFETY: far away.\nfn noop() {}\nunsafe impl Send for X {}\n";
        assert_eq!(check(src).len(), 1);
    }
}
