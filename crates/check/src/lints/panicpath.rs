//! Panic-path lint for request-handling code.
//!
//! A panic on the request path kills a compute worker or wedges a reactor
//! connection slot, so in the handler files (`server.rs`, `shard.rs`,
//! `http.rs`) every `.unwrap()`, `.expect(..)` and direct `x[i]` index is
//! a finding unless allowlisted with a justification (poison-tolerant
//! helpers like `lock_ok` / `unwrap_or_else` / `get(..)` are the fixes).
//!
//! Test modules are skipped — panicking is how tests fail.

use crate::scan::SourceFile;
use crate::Finding;

pub const LINT: &str = "panic-path";

pub fn run(sf: &SourceFile) -> Vec<Finding> {
    let toks = &sf.toks;
    let mut findings = Vec::new();
    for i in 0..toks.len() {
        let t = &toks[i];
        if sf.is_test_line(t.line) {
            continue;
        }
        let dot = i >= 1 && toks[i - 1].is(".");
        if dot && t.is("unwrap") && toks.get(i + 1).is_some_and(|p| p.is("(")) {
            findings.push(finding(sf, i, "unwrap", "`.unwrap()` on the request path"));
        }
        if dot && t.is("expect") && toks.get(i + 1).is_some_and(|p| p.is("(")) {
            findings.push(finding(
                sf,
                i,
                "expect",
                "`.expect(..)` on the request path",
            ));
        }
        // Direct indexing: `expr[` where expr ends in an identifier, `)`
        // or `]` — panics on out-of-bounds. Excludes attributes (`#[`),
        // macros (`vec![`), slice types (`&[u8]`) and array literals,
        // whose `[` follows punctuation.
        if t.is("[") && i >= 1 {
            let p = &toks[i - 1];
            let is_recv = p.is(")")
                || p.is("]")
                || p.text
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            let is_macro = i >= 2 && toks[i - 2].is("!");
            // `&'a [T]`: the token before `[` is the lifetime's identifier.
            let is_lifetime = i >= 2 && toks[i - 2].is("'");
            // `mut` / keywords before `[` start slice patterns, not indexing.
            let is_kw = matches!(
                p.text.as_str(),
                "mut" | "let" | "in" | "return" | "as" | "else"
            );
            if is_recv && !is_macro && !is_kw && !is_lifetime {
                findings.push(finding(
                    sf,
                    i,
                    "index",
                    "direct indexing can panic on the request path",
                ));
            }
        }
    }
    findings
}

fn finding(sf: &SourceFile, i: usize, pattern: &str, message: &str) -> Finding {
    Finding {
        lint: LINT,
        file: sf.rel.clone(),
        line: sf.toks[i].line,
        func: sf.fn_name_at(i),
        pattern: pattern.to_string(),
        message: message.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn patterns(src: &str) -> Vec<String> {
        run(&SourceFile::parse("h.rs", src))
            .into_iter()
            .map(|f| f.pattern)
            .collect()
    }

    #[test]
    fn unwrap_expect_index_flagged() {
        let src = "fn f(v: &[u8], m: &M) -> u8 {\n\
                   let x = m.lock().unwrap();\n\
                   let y = m.get().expect(\"present\");\n\
                   v[3]\n\
                   }\n";
        let p = patterns(src);
        assert_eq!(p, vec!["unwrap", "expect", "index"], "{p:?}");
    }

    #[test]
    fn recovering_forms_are_clean() {
        let src = "fn f(v: &[u8], m: &M) -> Option<u8> {\n\
                   let g = m.lock().unwrap_or_else(|e| e.into_inner());\n\
                   v.get(3).copied()\n\
                   }\n";
        assert!(patterns(src).is_empty());
    }

    #[test]
    fn types_attrs_macros_not_indexing() {
        let src = "#[derive(Debug)]\n\
                   fn f(b: &[u8]) -> Vec<u8> {\n\
                   let v: [u8; 4] = [0; 4];\n\
                   let w = vec![1, 2];\n\
                   let s = &b[..];\n\
                   w\n\
                   }\n";
        // `&b[..]` IS a direct index (can panic on ranges) — but `b` here
        // is the receiver, so exactly one finding.
        assert_eq!(patterns(src), vec!["index"]);
    }

    #[test]
    fn lifetime_slice_types_are_not_indexing() {
        let src = "struct G<'a> { members: &'a [Member] }\n";
        assert!(patterns(src).is_empty());
    }

    #[test]
    fn tests_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x().unwrap(); }\n}\n";
        assert!(patterns(src).is_empty());
    }
}
