//! Lock-order analysis for `crates/service`.
//!
//! Extracts every lock acquisition (`.lock()`, the poison-tolerant
//! `.lock_ok()` / `.lock_repair(..)` helpers, and empty-arg `.read()` /
//! `.write()` / `.read_ok()` / `.write_ok()` on RwLocks), scopes how long
//! each is held, and builds the nesting graph:
//!
//! * `let g = x.lock()…;` is a **guard**: held until its enclosing block
//!   closes or an explicit `drop(g)`.
//! * any other acquisition is a **statement temporary**: held until the
//!   statement's `;`, or — matching Rust's scrutinee-temporary rule — to
//!   the end of the `match`/`if let` body when it appears in a scrutinee.
//! * while a lock is held, a call into a workspace function that
//!   (transitively) locks contributes edges to everything that callee
//!   acquires. Calls are resolved by name only when the name is defined
//!   exactly once in the crate and is not a common std method name, so
//!   `map.get(..)` never aliases `Registry::get`.
//!
//! A lock's **class** is `<file-stem>.<field>` (e.g. `server.inflight`,
//! `shard.clients`); indexing is skipped, so `self.clients[i].lock()` is
//! class `shard.clients`. Findings: `cycle:…` for cycles in the nesting
//! graph (including recursive self-edges), `order:A->B` for edges that
//! contradict the declared hierarchy in `check/invariants.toml` (lower
//! level = acquired first; equal levels may not nest), and
//! `undeclared:C` for classes the hierarchy does not name — every lock
//! the crate adds must take a documented place in the hierarchy.
//!
//! Test modules are skipped: tests may poison and re-grab locks in
//! deliberately odd orders.

use std::collections::{BTreeMap, BTreeSet};

use crate::scan::{SourceFile, Tok};
use crate::Finding;

pub const LINT: &str = "lock-order";

/// Declared lock hierarchy: class → level; lower levels are acquired first.
#[derive(Debug, Default, Clone)]
pub struct Hierarchy {
    pub levels: BTreeMap<String, i64>,
}

const ACQ_METHODS: &[&str] = &[
    "lock",
    "lock_ok",
    "lock_repair",
    "read",
    "write",
    "read_ok",
    "write_ok",
];
/// These must have empty argument lists to count (filters io `read(&mut buf)`).
const EMPTY_ARG_ONLY: &[&str] = &["lock", "lock_ok", "read", "write", "read_ok", "write_ok"];

/// Method/function names too generic to resolve by name across the crate.
const COMMON_NAMES: &[&str] = &[
    "get",
    "get_mut",
    "insert",
    "remove",
    "len",
    "is_empty",
    "new",
    "clone",
    "push",
    "pop",
    "iter",
    "next",
    "send",
    "recv",
    "wait",
    "notify_all",
    "notify_one",
    "drain",
    "take",
    "clear",
    "contains_key",
    "contains",
    "entry",
    "or_insert",
    "unwrap",
    "expect",
    "map",
    "and_then",
    "or_else",
    "min",
    "max",
    "extend",
    "join",
    "spawn",
    "split",
    "find",
    "retain",
    "with_capacity",
    "from",
    "into",
    "to_string",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "write_all",
    "flush",
    "read_to_end",
    "read_exact",
    "parse",
    "run",
    "start",
    "stop",
    "close",
    "open",
    "load",
    "save",
    "handle",
    "default",
    "fmt",
    "drop",
    "eq",
    "cmp",
];

#[derive(Debug, Clone)]
struct Acq {
    tok: usize,
    line: usize,
    class: String,
    /// Token index after which the lock is no longer held (inclusive bound).
    hold_end: usize,
}

#[derive(Debug)]
struct FnFacts {
    name: String,
    file: String,
    acqs: Vec<Acq>,
    /// (call token index, source line, callee name) for resolvable calls.
    calls: Vec<(usize, usize, String)>,
}

/// A nesting edge: `from` was held when `to` was acquired.
#[derive(Debug, Clone)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: usize,
    pub func: String,
}

pub fn run(files: &[&SourceFile], hierarchy: Option<&Hierarchy>) -> Vec<Finding> {
    let edges = nesting_edges(files);
    let mut findings = Vec::new();

    // Deduplicate by (from, to), keeping the first (deterministic) site.
    let mut uniq: BTreeMap<(String, String), Edge> = BTreeMap::new();
    for e in &edges {
        uniq.entry((e.from.clone(), e.to.clone()))
            .or_insert_with(|| e.clone());
    }

    for cycle in find_cycles(&uniq) {
        let site = &uniq[&(cycle[0].clone(), cycle[1 % cycle.len()].clone())];
        let mut path = cycle.clone();
        path.push(cycle[0].clone());
        findings.push(Finding {
            lint: LINT,
            file: site.file.clone(),
            line: site.line,
            func: site.func.clone(),
            pattern: format!("cycle:{}", path.join("->")),
            message: format!("lock acquisition cycle {}", path.join(" -> ")),
        });
    }

    if let Some(h) = hierarchy {
        for e in uniq.values() {
            let (Some(&from), Some(&to)) = (h.levels.get(&e.from), h.levels.get(&e.to)) else {
                continue; // undeclared classes are reported once below
            };
            if from >= to {
                findings.push(Finding {
                    lint: LINT,
                    file: e.file.clone(),
                    line: e.line,
                    func: e.func.clone(),
                    pattern: format!("order:{}->{}", e.from, e.to),
                    message: format!(
                        "`{}` (level {from}) held while acquiring `{}` (level {to}); \
                         the declared hierarchy requires strictly increasing levels",
                        e.from, e.to
                    ),
                });
            }
        }
        // Every acquired class must have a declared place in the hierarchy.
        let mut seen: BTreeSet<String> = BTreeSet::new();
        for facts in collect_facts(files) {
            for a in &facts.acqs {
                if !h.levels.contains_key(&a.class) && seen.insert(a.class.clone()) {
                    findings.push(Finding {
                        lint: LINT,
                        file: facts.file.clone(),
                        line: a.line,
                        func: facts.name.clone(),
                        pattern: format!("undeclared:{}", a.class),
                        message: format!(
                            "lock class `{}` is not declared in check/invariants.toml",
                            a.class
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// All nesting edges across `files`, including cross-function edges from
/// locks held over calls into functions that (transitively) lock.
pub fn nesting_edges(files: &[&SourceFile]) -> Vec<Edge> {
    let all_facts: Vec<FnFacts> = collect_facts(files);

    // fn name → indices (for uniqueness check during call resolution).
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, f) in all_facts.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }

    // Transitive acquire sets per fn (fixpoint over the call graph).
    let mut acquires: Vec<BTreeSet<String>> = all_facts
        .iter()
        .map(|f| f.acqs.iter().map(|a| a.class.clone()).collect())
        .collect();
    loop {
        let mut changed = false;
        for i in 0..all_facts.len() {
            for (_, _, callee) in &all_facts[i].calls {
                let Some(js) = by_name.get(callee.as_str()) else {
                    continue;
                };
                if js.len() != 1 {
                    continue;
                }
                let j = js[0];
                let add: Vec<String> = acquires[j]
                    .iter()
                    .filter(|c| !acquires[i].contains(*c))
                    .cloned()
                    .collect();
                if !add.is_empty() {
                    acquires[i].extend(add);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut edges = Vec::new();
    for (i, facts) in all_facts.iter().enumerate() {
        for a in &facts.acqs {
            // Direct nesting: a later acquisition inside a's hold span.
            for b in &facts.acqs {
                if b.tok > a.tok && b.tok <= a.hold_end {
                    edges.push(Edge {
                        from: a.class.clone(),
                        to: b.class.clone(),
                        file: facts.file.clone(),
                        line: b.line,
                        func: facts.name.clone(),
                    });
                }
            }
            // Held-across-call nesting.
            for (c, call_line, callee) in &facts.calls {
                if *c <= a.tok || *c > a.hold_end {
                    continue;
                }
                let Some(js) = by_name.get(callee.as_str()) else {
                    continue;
                };
                if js.len() != 1 || js[0] == i {
                    continue;
                }
                for class in &acquires[js[0]] {
                    edges.push(Edge {
                        from: a.class.clone(),
                        to: class.clone(),
                        file: facts.file.clone(),
                        line: *call_line,
                        func: facts.name.clone(),
                    });
                }
            }
        }
    }
    edges
}

fn collect_facts(files: &[&SourceFile]) -> Vec<FnFacts> {
    let mut out = Vec::new();
    for sf in files {
        let stem = file_stem(&sf.rel);
        for f in &sf.fns {
            if sf.is_test_line(f.line) || sf.is_test_line(sf.toks[f.body_open].line) {
                continue;
            }
            out.push(scan_fn(sf, &stem, f));
        }
    }
    out
}

fn file_stem(rel: &str) -> String {
    rel.rsplit('/')
        .next()
        .unwrap_or(rel)
        .trim_end_matches(".rs")
        .to_string()
}

fn scan_fn(sf: &SourceFile, stem: &str, f: &crate::scan::FnSpan) -> FnFacts {
    let toks = &sf.toks;
    let mut facts = FnFacts {
        name: f.name.clone(),
        file: sf.rel.clone(),
        acqs: Vec::new(),
        calls: Vec::new(),
    };
    let mut i = f.body_open + 1;
    while i < f.body_close {
        let t = &toks[i];
        // Skip nested fn items entirely (they get their own facts).
        if t.is("fn") && sf.fns.iter().any(|g| g.fn_tok == i && g.fn_tok != f.fn_tok) {
            if let Some(g) = sf.fns.iter().find(|g| g.fn_tok == i) {
                i = g.body_close + 1;
                continue;
            }
        }
        // Acquisition: `.method(` with the right arity.
        if ACQ_METHODS.contains(&t.text.as_str())
            && i >= 1
            && toks[i - 1].is(".")
            && toks.get(i + 1).is_some_and(|p| p.is("("))
        {
            let empty_args = toks.get(i + 2).is_some_and(|p| p.is(")"));
            let ok = if EMPTY_ARG_ONLY.contains(&t.text.as_str()) {
                empty_args
            } else {
                true // lock_repair takes a repair closure
            };
            if ok {
                if let Some(class) = receiver_class(toks, i - 1) {
                    let after = skip_call_chain(toks, i + 1);
                    let hold_end = hold_span(sf, f, i, after);
                    facts.acqs.push(Acq {
                        tok: i,
                        line: toks[i].line,
                        class: format!("{stem}.{class}"),
                        hold_end,
                    });
                }
                i += 1;
                continue;
            }
        }
        // Call site: `name(` not preceded by `fn`, not a macro `name!(`.
        if toks.get(i + 1).is_some_and(|p| p.is("("))
            && t.text
                .chars()
                .next()
                .is_some_and(|c| c.is_alphabetic() || c == '_')
            && !(i >= 1 && (toks[i - 1].is("fn") || toks[i - 1].is("!")))
            && !COMMON_NAMES.contains(&t.text.as_str())
            && !ACQ_METHODS.contains(&t.text.as_str())
            && !matches!(
                t.text.as_str(),
                "if" | "while" | "for" | "match" | "return" | "loop" | "Some" | "Ok" | "Err"
            )
            && t.text != f.name
        {
            facts.calls.push((i, t.line, t.text.clone()));
        }
        // Explicit guard release: `drop(name)` truncates that guard's span.
        if t.is("drop") && toks.get(i + 1).is_some_and(|p| p.is("(")) {
            if let Some(name) = toks.get(i + 2) {
                if toks.get(i + 3).is_some_and(|p| p.is(")")) {
                    truncate_guard(sf, &mut facts, f, &name.text, i);
                }
            }
        }
        i += 1;
    }
    facts
}

/// The lock's class: the field identifier directly before `.lock()`,
/// skipping one `[index]` group (`self.clients[i].lock()` → `clients`).
fn receiver_class(toks: &[Tok], dot: usize) -> Option<String> {
    let mut p = dot.checked_sub(1)?;
    if toks[p].is("]") {
        let mut depth = 0i32;
        loop {
            if toks[p].is("]") {
                depth += 1;
            } else if toks[p].is("[") {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            p = p.checked_sub(1)?;
        }
        p = p.checked_sub(1)?;
    }
    let t = &toks[p];
    // A bare `self.lock()` receiver is a lock-wrapper impl (the `sync.rs`
    // extension traits), not a real acquisition site: its callers invoke
    // `x.lock_ok()` directly, which is itself a recognized method.
    if t.is("self") {
        return None;
    }
    if t.text
        .chars()
        .next()
        .is_some_and(|c| c.is_alphabetic() || c == '_')
    {
        Some(t.text.clone())
    } else {
        None
    }
}

/// Skips `(args)` then any `.unwrap()` / `.expect(..)` / `.unwrap_or_else(..)`
/// suffix; returns the index of the first token after the chain.
fn skip_call_chain(toks: &[Tok], open_paren: usize) -> usize {
    let mut i = skip_group(toks, open_paren);
    while toks.get(i).is_some_and(|t| t.is("."))
        && toks
            .get(i + 1)
            .is_some_and(|t| matches!(t.text.as_str(), "unwrap" | "expect" | "unwrap_or_else"))
        && toks.get(i + 2).is_some_and(|t| t.is("("))
    {
        i = skip_group(toks, i + 2);
    }
    i
}

/// `toks[open]` is `(`/`[`/`{`; returns the index just past its closer.
fn skip_group(toks: &[Tok], open: usize) -> usize {
    let (o, c) = match toks[open].text.as_str() {
        "(" => ("(", ")"),
        "[" => ("[", "]"),
        _ => ("{", "}"),
    };
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        if toks[i].is(o) {
            depth += 1;
        } else if toks[i].is(c) {
            depth -= 1;
            if depth == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    toks.len()
}

/// Computes how long the acquisition at `acq` (method token) is held.
/// `after` is the first token past the `.lock().unwrap()`-style chain.
fn hold_span(sf: &SourceFile, f: &crate::scan::FnSpan, acq: usize, after: usize) -> usize {
    let toks = &sf.toks;
    // Guard binding: chain is the whole initializer of `let [mut] name = …;`
    if toks.get(after).is_some_and(|t| t.is(";")) {
        if let Some(_name) = let_binding_name(toks, acq) {
            // Held to the close of the innermost enclosing block.
            if let Some(close) = enclosing_block_close(sf, f, acq) {
                return close;
            }
        }
    }
    // Statement temporary: to the `;`, or through a `match`/`if let` body
    // whose scrutinee contains the acquisition.
    let mut paren = 0i32;
    let mut i = after;
    while i < f.body_close {
        let t = &toks[i];
        if t.is("(") || t.is("[") {
            paren += 1;
        } else if t.is(")") || t.is("]") {
            if paren == 0 {
                return i; // closed an enclosing group (e.g. a call argument)
            }
            paren -= 1;
        } else if paren == 0 && t.is(";") {
            return i;
        } else if paren == 0 && t.is("{") {
            // Scrutinee temporary: lives to the end of the block.
            return sf.brace_match[i].unwrap_or(f.body_close).min(f.body_close);
        } else if paren == 0 && t.is("}") {
            return i; // tail expression
        }
        i += 1;
    }
    f.body_close
}

/// If the statement containing the chain starting near `acq` is a plain
/// `let [mut] name = <receiver>.lock()…`, returns `name`.
fn let_binding_name(toks: &[Tok], acq: usize) -> Option<String> {
    // Walk back over the receiver chain: `a . b [i] . c . lock`.
    let mut p = acq.checked_sub(1)?; // the `.`
    loop {
        p = p.checked_sub(1)?;
        if toks[p].is("]") {
            let mut depth = 0i32;
            loop {
                if toks[p].is("]") {
                    depth += 1;
                } else if toks[p].is("[") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                p = p.checked_sub(1)?;
            }
        } else if !toks[p]
            .text
            .chars()
            .next()
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            return None; // receiver is an expression, not a simple path
        }
        if p == 0 || !toks[p - 1].is(".") {
            break;
        }
        p -= 1; // step onto the `.`; loop decrements onto the next segment
    }
    // Expect `let [mut] name =` directly before the chain.
    let eq = p.checked_sub(1)?;
    if !toks[eq].is("=") {
        return None;
    }
    let name = eq.checked_sub(1)?;
    let mut kw = name.checked_sub(1)?;
    if toks[kw].is("mut") {
        kw = kw.checked_sub(1)?;
    }
    if toks[kw].is("let") {
        Some(toks[name].text.clone())
    } else {
        None
    }
}

/// Token index of the `}` closing the innermost block containing `i`.
fn enclosing_block_close(sf: &SourceFile, f: &crate::scan::FnSpan, i: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (open, close)
    for (open, close) in sf.brace_match.iter().enumerate() {
        let Some(close) = close else { continue };
        if open >= f.body_open
            && *close <= f.body_close
            && open < i
            && i < *close
            && best.is_none_or(|(bo, _)| open > bo)
        {
            best = Some((open, *close));
        }
    }
    best.map(|(_, c)| c)
}

/// Applies `drop(name)` at token `at`: the innermost guard bound to `name`
/// that is still held gets its span truncated.
fn truncate_guard(
    sf: &SourceFile,
    facts: &mut FnFacts,
    _f: &crate::scan::FnSpan,
    name: &str,
    at: usize,
) {
    let toks = &sf.toks;
    for a in facts.acqs.iter_mut().rev() {
        if a.tok < at && at <= a.hold_end {
            if let Some(bound) = let_binding_name(toks, a.tok) {
                if bound == name {
                    a.hold_end = at;
                    return;
                }
            }
        }
    }
}

/// Enumerates elementary cycles (deduped by node set) in the edge graph.
fn find_cycles(edges: &BTreeMap<(String, String), Edge>) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    let mut cycles: Vec<Vec<String>> = Vec::new();
    let mut seen_sets: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys().collect::<Vec<_>>().iter() {
        // DFS restricted to nodes >= start to canonicalize each cycle.
        let mut path: Vec<&str> = Vec::new();
        dfs(start, start, &adj, &mut path, &mut |cycle: &[&str]| {
            let mut set: Vec<String> = cycle.iter().map(|s| s.to_string()).collect();
            set.sort();
            if seen_sets.insert(set) {
                cycles.push(cycle.iter().map(|s| s.to_string()).collect());
            }
        });
    }
    cycles
}

fn dfs<'a>(
    start: &'a str,
    node: &'a str,
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    emit: &mut impl FnMut(&[&str]),
) {
    path.push(node);
    if let Some(nexts) = adj.get(node) {
        for &n in nexts {
            if n == start {
                emit(path);
            } else if n > start && !path.contains(&n) {
                dfs(start, n, adj, path, emit);
            }
        }
    }
    path.pop();
}

/// Parses the `[[lock]]` tables of `check/invariants.toml`.
pub fn parse_hierarchy(text: &str) -> Result<Hierarchy, String> {
    let tables = crate::toml_min::parse(text).map_err(|e| e.to_string())?;
    let mut levels = BTreeMap::new();
    for t in tables {
        if t.name != "lock" {
            return Err(format!(
                "unexpected table [[{}]] in invariants file",
                t.name
            ));
        }
        let name = t
            .str_field("name")
            .ok_or_else(|| "[[lock]] missing `name`".to_string())?;
        let level = t
            .int_field("level")
            .ok_or_else(|| format!("[[lock]] `{name}` missing `level`"))?;
        if levels.insert(name.to_string(), level).is_some() {
            return Err(format!("duplicate lock class `{name}`"));
        }
    }
    Ok(Hierarchy { levels })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edges_of(src: &str) -> Vec<(String, String)> {
        let sf = SourceFile::parse("x.rs", src);
        let mut e: Vec<_> = nesting_edges(&[&sf])
            .into_iter()
            .map(|e| (e.from, e.to))
            .collect();
        e.sort();
        e.dedup();
        e
    }

    #[test]
    fn guard_then_lock_is_an_edge() {
        let src = "fn f(s: &S) {\n\
                   let g = s.a.lock().unwrap();\n\
                   s.b.lock().unwrap().touch();\n\
                   }\n";
        assert_eq!(edges_of(src), vec![("x.a".into(), "x.b".into())]);
    }

    #[test]
    fn bare_self_receiver_is_not_an_acquisition() {
        // Lock-wrapper impls (`impl LockExt for Mutex { fn lock_ok(&self)
        // { self.lock() ... } }`) must not mint a `<file>.self` class.
        let src = "impl<T> LockExt<T> for Mutex<T> {\n\
                   fn lock_ok(&self) -> MutexGuard<'_, T> {\n\
                   let g = self.lock().unwrap_or_else(|e| e.into_inner());\n\
                   self.inner.lock().unwrap().touch();\n\
                   g\n\
                   }\n\
                   }\n";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn sequential_temps_are_not_edges() {
        let src = "fn f(s: &S) {\n\
                   s.a.lock().unwrap().touch();\n\
                   s.b.lock().unwrap().touch();\n\
                   }\n";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "fn f(s: &S) {\n\
                   let g = s.a.lock().unwrap();\n\
                   drop(g);\n\
                   s.b.lock().unwrap().touch();\n\
                   }\n";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn scrutinee_temp_spans_the_match_body() {
        let src = "fn f(s: &S) -> u32 {\n\
                   match s.a.lock().unwrap().state() {\n\
                   0 => s.b.lock().unwrap().go(),\n\
                   _ => 0,\n\
                   }\n\
                   }\n";
        assert_eq!(edges_of(src), vec![("x.a".into(), "x.b".into())]);
    }

    #[test]
    fn block_scope_ends_a_guard() {
        let src = "fn f(s: &S) {\n\
                   {\n\
                   let g = s.a.lock().unwrap();\n\
                   g.touch();\n\
                   }\n\
                   s.b.lock().unwrap().touch();\n\
                   }\n";
        assert!(edges_of(src).is_empty());
    }

    #[test]
    fn cross_function_edges_and_cycle() {
        let src = "fn grab_b(s: &S) { s.b.lock().unwrap().touch(); }\n\
                   fn grab_a(s: &S) { s.a.lock().unwrap().touch(); }\n\
                   fn ab(s: &S) { let g = s.a.lock().unwrap(); grab_b(s); }\n\
                   fn ba(s: &S) { let g = s.b.lock().unwrap(); grab_a(s); }\n";
        let sf = SourceFile::parse("x.rs", src);
        let findings = run(&[&sf], None);
        assert!(
            findings.iter().any(|f| f.pattern.starts_with("cycle:")),
            "{findings:?}"
        );
    }

    #[test]
    fn indexing_receiver_resolves_to_field() {
        let src = "fn f(s: &S, i: usize) {\n\
                   let g = s.members.lock().unwrap();\n\
                   s.clients[i].lock().unwrap().go();\n\
                   }\n";
        assert_eq!(
            edges_of(src),
            vec![("x.members".into(), "x.clients".into())]
        );
    }

    #[test]
    fn hierarchy_violation_and_undeclared() {
        let src = "fn f(s: &S) {\n\
                   let g = s.inner.lock().unwrap();\n\
                   s.outer.lock().unwrap().go();\n\
                   s.mystery.lock().unwrap().go();\n\
                   }\n";
        let h = parse_hierarchy(
            "[[lock]]\nname = \"x.outer\"\nlevel = 10\n[[lock]]\nname = \"x.inner\"\nlevel = 20\n",
        )
        .unwrap();
        let findings = run(&[&SourceFile::parse("x.rs", src)], Some(&h));
        assert!(
            findings
                .iter()
                .any(|f| f.pattern == "order:x.inner->x.outer"),
            "{findings:?}"
        );
        assert!(findings.iter().any(|f| f.pattern == "undeclared:x.mystery"));
    }

    #[test]
    fn recursive_same_class_is_a_cycle() {
        let src = "fn f(s: &S) {\n\
                   let g = s.a.lock().unwrap();\n\
                   s.a.lock().unwrap().again();\n\
                   }\n";
        let findings = run(&[&SourceFile::parse("x.rs", src)], None);
        assert!(
            findings.iter().any(|f| f.pattern == "cycle:x.a->x.a"),
            "{findings:?}"
        );
    }

    #[test]
    fn io_read_with_args_is_not_a_lock() {
        let src = "fn f(s: &mut TcpStream, buf: &mut [u8]) {\n\
                   let n = s.read(buf).unwrap();\n\
                   let _ = n;\n\
                   }\n";
        let sf = SourceFile::parse("x.rs", src);
        assert!(nesting_edges(&[&sf]).is_empty());
    }

    #[test]
    fn test_modules_are_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n\
                   fn f(s: &S) { let g = s.b.lock().unwrap(); s.a.lock().unwrap().go(); }\n\
                   }\n";
        let sf = SourceFile::parse("x.rs", src);
        assert!(nesting_edges(&[&sf]).is_empty());
    }
}
