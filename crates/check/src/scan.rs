//! A small line/token-level Rust scanner — no syn, no rustc.
//!
//! The lints in this crate need four things from a source file, none of
//! which require full parsing:
//!
//! * a token stream (identifiers + single-char punctuation) with line
//!   numbers, with comments stripped and string/char-literal bodies
//!   blanked so `"foo.lock()"` in a log message is never a finding;
//! * the comment text per line (the unsafe audit looks for `SAFETY:`);
//! * matched-brace structure, so guards can be scoped and `fn` bodies
//!   delimited;
//! * `#[cfg(test)]` regions, so hot-path lints can skip test code.
//!
//! The scanner is deliberately heuristic: it understands line comments,
//! nested block comments, string/raw-string/byte-string/char literals and
//! lifetimes, which is enough to be exact on this workspace's sources.
//! It does not attempt macro expansion or type inference.

use std::fmt;
use std::path::Path;

/// One token: an identifier/number or a single punctuation character.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub text: String,
    /// 1-based source line.
    pub line: usize,
}

impl Tok {
    pub fn is(&self, s: &str) -> bool {
        self.text == s
    }
}

/// Per-line facts retained after tokenization.
#[derive(Debug, Clone, Default)]
pub struct LineInfo {
    /// Comment text on this line (line comments and any block-comment
    /// fragment), concatenated. Empty when the line has no comment.
    pub comment: String,
    /// Number of tokens on this line; 0 + nonempty comment = comment-only.
    pub tokens: usize,
}

/// A `fn` item with a brace-delimited body.
#[derive(Debug, Clone)]
pub struct FnSpan {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index of the `fn` keyword.
    pub fn_tok: usize,
    /// Token index of the body's `{`.
    pub body_open: usize,
    /// Token index of the body's matching `}`.
    pub body_close: usize,
}

/// A scanned source file.
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (baseline key).
    pub rel: String,
    pub toks: Vec<Tok>,
    pub lines: Vec<LineInfo>,
    /// For each `{` token index, the index of its matching `}`.
    pub brace_match: Vec<Option<usize>>,
    pub fns: Vec<FnSpan>,
    /// Inclusive 1-based line ranges covered by `#[cfg(test)]` items.
    pub test_ranges: Vec<(usize, usize)>,
}

impl fmt::Debug for SourceFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SourceFile")
            .field("rel", &self.rel)
            .field("toks", &self.toks.len())
            .field("fns", &self.fns.len())
            .finish()
    }
}

impl SourceFile {
    pub fn parse(rel: &str, source: &str) -> SourceFile {
        let (toks, lines) = tokenize(source);
        let brace_match = match_braces(&toks);
        let fns = find_fns(&toks, &brace_match);
        let test_ranges = find_test_ranges(&toks, &brace_match);
        SourceFile {
            rel: rel.to_string(),
            toks,
            lines,
            brace_match,
            fns,
            test_ranges,
        }
    }

    pub fn load(root: &Path, rel: &str) -> std::io::Result<SourceFile> {
        let text = std::fs::read_to_string(root.join(rel))?;
        Ok(SourceFile::parse(rel, &text))
    }

    /// True when the 1-based `line` falls inside a `#[cfg(test)]` item.
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_ranges
            .iter()
            .any(|&(a, b)| a <= line && line <= b)
    }

    /// The innermost `fn` containing token index `i`, if any.
    pub fn enclosing_fn(&self, i: usize) -> Option<&FnSpan> {
        self.fns
            .iter()
            .filter(|f| f.fn_tok <= i && i <= f.body_close)
            .min_by_key(|f| f.body_close - f.fn_tok)
    }

    /// Name of the innermost enclosing fn, or `"<file>"` for item-level code.
    pub fn fn_name_at(&self, i: usize) -> String {
        self.enclosing_fn(i)
            .map(|f| f.name.clone())
            .unwrap_or_else(|| "<file>".to_string())
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Splits source into tokens and per-line comment records, blanking the
/// bodies of string/char literals and dropping comments from the token
/// stream (their text is kept per line for the SAFETY audit).
fn tokenize(source: &str) -> (Vec<Tok>, Vec<LineInfo>) {
    let mut toks = Vec::new();
    let mut lines: Vec<LineInfo> = vec![LineInfo::default()];
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            ensure_line(&mut lines, line);
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = i;
            while i < chars.len() && chars[i] != '\n' {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let li = ensure_line(&mut lines, line);
            li.comment.push_str(&text);
            li.comment.push(' ');
            continue;
        }
        // Block comment (nested).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 1;
            let mut frag = String::from("/*");
            i += 2;
            while i < chars.len() && depth > 0 {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    frag.push_str("/*");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    frag.push_str("*/");
                    i += 2;
                } else {
                    if chars[i] == '\n' {
                        let li = ensure_line(&mut lines, line);
                        li.comment.push_str(&frag);
                        li.comment.push(' ');
                        frag.clear();
                        line += 1;
                        ensure_line(&mut lines, line);
                    } else {
                        frag.push(chars[i]);
                    }
                    i += 1;
                }
            }
            let li = ensure_line(&mut lines, line);
            li.comment.push_str(&frag);
            li.comment.push(' ');
            continue;
        }
        // Raw string: r"..." / r#"..."# / br#"..."# (any # count).
        if (c == 'r' || c == 'b')
            && !prev_is_ident(&chars, i)
            && raw_string_hashes(&chars, i).is_some()
        {
            let (body_start, hashes) = raw_string_hashes(&chars, i).unwrap();
            i = body_start;
            let closer: String = std::iter::once('"')
                .chain(std::iter::repeat_n('#', hashes))
                .collect();
            let closer: Vec<char> = closer.chars().collect();
            while i < chars.len() {
                if chars[i] == '\n' {
                    line += 1;
                    ensure_line(&mut lines, line);
                    i += 1;
                    continue;
                }
                if chars[i] == '"' && chars[i..].starts_with(&closer[..]) {
                    i += closer.len();
                    break;
                }
                i += 1;
            }
            push_tok(&mut toks, "\"\"", line, ensure_line(&mut lines, line));
            continue;
        }
        // Plain or byte string.
        if c == '"' || (c == 'b' && chars.get(i + 1) == Some(&'"') && !prev_is_ident(&chars, i)) {
            if c == 'b' {
                i += 1;
            }
            i += 1; // opening quote
            while i < chars.len() {
                match chars[i] {
                    '\\' => i += 2,
                    '"' => {
                        i += 1;
                        break;
                    }
                    '\n' => {
                        line += 1;
                        ensure_line(&mut lines, line);
                        i += 1;
                    }
                    _ => i += 1,
                }
            }
            push_tok(&mut toks, "\"\"", line, ensure_line(&mut lines, line));
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let is_char = match next {
                Some('\\') => true,
                Some(n) if is_ident_char(n) => chars.get(i + 2) == Some(&'\''),
                Some(_) => true, // '(' , '&' , ' ' ... all char literals
                None => false,
            };
            if is_char {
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '\'' => {
                            i += 1;
                            break;
                        }
                        _ => i += 1,
                    }
                }
                push_tok(&mut toks, "''", line, ensure_line(&mut lines, line));
            } else {
                // Lifetime: emit the quote, the identifier follows normally.
                push_tok(&mut toks, "'", line, ensure_line(&mut lines, line));
                i += 1;
            }
            continue;
        }
        // Identifier / number.
        if is_ident_char(c) {
            let start = i;
            while i < chars.len() && is_ident_char(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            push_tok(&mut toks, &text, line, ensure_line(&mut lines, line));
            continue;
        }
        // Single punctuation char.
        push_tok(
            &mut toks,
            &c.to_string(),
            line,
            ensure_line(&mut lines, line),
        );
        i += 1;
    }
    (toks, lines)
}

fn ensure_line(lines: &mut Vec<LineInfo>, line: usize) -> &mut LineInfo {
    while lines.len() < line + 1 {
        lines.push(LineInfo::default());
    }
    &mut lines[line]
}

fn push_tok(toks: &mut Vec<Tok>, text: &str, line: usize, li: &mut LineInfo) {
    li.tokens += 1;
    toks.push(Tok {
        text: text.to_string(),
        line,
    });
}

fn prev_is_ident(chars: &[char], i: usize) -> bool {
    i > 0 && is_ident_char(chars[i - 1])
}

/// If `chars[i..]` begins a raw (byte) string, returns (index just past the
/// opening quote, number of `#`s).
fn raw_string_hashes(chars: &[char], i: usize) -> Option<(usize, usize)> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((j + 1, hashes))
    } else {
        None
    }
}

fn match_braces(toks: &[Tok]) -> Vec<Option<usize>> {
    let mut out = vec![None; toks.len()];
    let mut stack = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.is("{") {
            stack.push(i);
        } else if t.is("}") {
            if let Some(open) = stack.pop() {
                out[open] = Some(i);
            }
        }
    }
    out
}

const KEYWORDS_AFTER_FN: &[&str] = &["fn"];

fn find_fns(toks: &[Tok], brace_match: &[Option<usize>]) -> Vec<FnSpan> {
    let mut fns = Vec::new();
    for i in 0..toks.len() {
        if !KEYWORDS_AFTER_FN.contains(&toks[i].text.as_str()) {
            continue;
        }
        // `fn` must be followed by an identifier (rules out `Fn` traits,
        // which tokenize as `Fn`, and bare `fn` pointer types `fn(`).
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        if !name_tok.text.chars().next().is_some_and(is_ident_char) {
            continue;
        }
        // Scan the signature for the body `{` (or `;` for trait decls),
        // skipping parenthesized params and default-arg groups.
        let mut paren = 0i32;
        let mut j = i + 2;
        let mut body_open = None;
        while j < toks.len() {
            let t = &toks[j];
            if t.is("(") || t.is("[") {
                paren += 1;
            } else if t.is(")") || t.is("]") {
                paren -= 1;
            } else if paren == 0 && t.is("{") {
                body_open = Some(j);
                break;
            } else if paren == 0 && t.is(";") {
                break;
            }
            j += 1;
        }
        if let Some(open) = body_open {
            if let Some(close) = brace_match[open] {
                fns.push(FnSpan {
                    name: name_tok.text.clone(),
                    line: toks[i].line,
                    fn_tok: i,
                    body_open: open,
                    body_close: close,
                });
            }
        }
    }
    fns
}

/// Finds `#[cfg(test)]`-gated items and returns their line ranges.
fn find_test_ranges(toks: &[Tok], brace_match: &[Option<usize>]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = toks[i].is("#")
            && toks[i + 1].is("[")
            && toks[i + 2].is("cfg")
            && toks[i + 3].is("(")
            && toks[i + 4].is("test")
            && toks[i + 5].is(")")
            && toks[i + 6].is("]");
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        // Skip any further attributes, then find the item's body.
        let mut j = i + 7;
        while j < toks.len() && toks[j].is("#") {
            // Skip the whole `[...]` group.
            if toks.get(j + 1).is_some_and(|t| t.is("[")) {
                let mut depth = 0i32;
                j += 1;
                while j < toks.len() {
                    if toks[j].is("[") {
                        depth += 1;
                    } else if toks[j].is("]") {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            } else {
                j += 1;
            }
        }
        // Find the first `{` (item body) before a `;` (e.g. a gated `use`).
        let mut open = None;
        while j < toks.len() {
            if toks[j].is("{") {
                open = Some(j);
                break;
            }
            if toks[j].is(";") {
                break;
            }
            j += 1;
        }
        if let Some(open) = open {
            if let Some(close) = brace_match[open] {
                out.push((start_line, toks[close].line));
                i = close;
                continue;
            }
        }
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let src = r##"
fn f() {
    let s = "contains .lock() and unwrap()"; // trailing note
    /* block .lock() */
    let r = r#"raw .unwrap()"#;
    let c = '{';
}
"##;
        let sf = SourceFile::parse("x.rs", src);
        assert!(!sf.toks.iter().any(|t| t.is("lock")));
        assert!(!sf.toks.iter().any(|t| t.is("unwrap")));
        // Braces stayed balanced despite the '{' char literal.
        assert_eq!(sf.fns.len(), 1);
        assert_eq!(sf.fns[0].name, "f");
        assert!(sf.lines[3].comment.contains("trailing note"));
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn g() {}";
        let sf = SourceFile::parse("x.rs", src);
        assert_eq!(sf.fns.len(), 1);
        assert_eq!(sf.fns[0].name, "g");
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn h<'a>(x: &'a str) -> &'a str { x }";
        let sf = SourceFile::parse("x.rs", src);
        assert_eq!(sf.fns.len(), 1);
        assert!(sf.toks.iter().any(|t| t.is("str")));
    }

    #[test]
    fn cfg_test_ranges_cover_mod() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n";
        let sf = SourceFile::parse("x.rs", src);
        assert_eq!(sf.test_ranges.len(), 1);
        assert!(!sf.is_test_line(1));
        assert!(sf.is_test_line(4));
    }

    #[test]
    fn enclosing_fn_prefers_innermost() {
        let src = "fn outer() {\n    fn inner() {\n        let x = 1;\n    }\n}\n";
        let sf = SourceFile::parse("x.rs", src);
        let idx = sf.toks.iter().position(|t| t.is("x")).unwrap();
        assert_eq!(sf.fn_name_at(idx), "inner");
    }

    #[test]
    fn multiline_signature_finds_body() {
        let src = "fn long(\n    a: u32,\n    b: u32,\n) -> u32 {\n    a + b\n}\n";
        let sf = SourceFile::parse("x.rs", src);
        assert_eq!(sf.fns.len(), 1);
        assert_eq!(sf.toks[sf.fns[0].body_open].line, 4);
    }
}
