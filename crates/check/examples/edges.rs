//! Dumps the service crate's lock-nesting graph — every `A -> B` edge
//! where lock class `B` is acquired while `A` is held, with the function
//! and line that creates it. Useful when extending the declared hierarchy
//! in `check/invariants.toml`:
//!
//! ```sh
//! cargo run -p saphyra-check --example edges
//! ```

fn main() {
    let root = saphyra_check::default_root();
    let files = saphyra_check::workspace_sources(&root).unwrap();
    let service: Vec<&saphyra_check::scan::SourceFile> = files
        .iter()
        .filter(|sf| saphyra_check::lockorder_in_scope(&sf.rel))
        .collect();
    for e in saphyra_check::lints::lockorder::nesting_edges(&service) {
        println!(
            "EDGE {} -> {}   ({}:{} fn {})",
            e.from, e.to, e.file, e.line, e.func
        );
    }
}
