//! # saphyra-stats
//!
//! The statistical learning-theory toolkit behind SaPHyRa (ICDE 2022):
//!
//! * [`bounds`]: Hoeffding and empirical-Bernstein deviation bounds
//!   (paper Lemma 3), their inverses, and the VC sample-complexity bound
//!   (Lemma 4, constant `c ≈ 0.5`).
//! * [`moments`]: streaming mean/variance accumulators — the Bernoulli
//!   fast path used by SaPHyRa/KADABRA (0-1 losses) and Welford for ABRA's
//!   fractional pair-dependencies.
//! * [`schedule`]: the adaptive-sampling schedule of Algorithm 1 — doubling
//!   rounds and per-hypothesis error-probability allocation (Eq. 13).
//! * [`spearman`], [`kendall`]: rank correlations (Eq. 1 and Kendall's τ)
//!   with the paper's tie-break-by-node-id ranking.
//! * [`relerr`]: signed relative errors, true/false-zero classification and
//!   the Fig. 6 histogram.
//! * [`summary`]: mean / 95%-confidence-interval summaries for the shaded
//!   bands of Figs. 3-5.
//! * [`stream`]: counter-based deterministic RNG streams — the seed
//!   discipline that makes the parallel batch samplers bit-identical for
//!   every thread count.

pub mod bounds;
pub mod kendall;
pub mod moments;
pub mod relerr;
pub mod schedule;
pub mod spearman;
pub mod stream;
pub mod summary;

pub use bounds::{
    empirical_bernstein_delta, empirical_bernstein_epsilon, hoeffding_epsilon, hoeffding_samples,
    vc_sample_bound, C_VC,
};
pub use kendall::kendall_tau;
pub use moments::{bernoulli_sample_variance, StreamingMoments};
pub use relerr::{relative_errors, RelErrReport};
pub use schedule::{allocate_deltas, doubling_rounds};
pub use spearman::{rank_deviation, ranks_by_value, spearman_rho, spearman_vs_truth};
pub use summary::Summary;
