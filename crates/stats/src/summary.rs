//! Mean / spread summaries for repeated trials (the shaded 95% bands of
//! Figs. 3-5).

/// Summary statistics of a batch of trial outcomes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation (0 for n < 2).
    pub std: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Lower edge of the normal-approximation 95% confidence interval of
    /// the mean.
    pub ci_lo: f64,
    /// Upper edge of the 95% confidence interval.
    pub ci_hi: f64,
}

impl Summary {
    /// Summarizes `xs`; panics on empty input.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "cannot summarize an empty batch");
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n > 1 {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0)
        } else {
            0.0
        };
        let std = var.sqrt();
        let half = 1.96 * std / (n as f64).sqrt();
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &x in xs {
            min = min.min(x);
            max = max.max(x);
        }
        Summary {
            n,
            mean,
            std,
            min,
            max,
            ci_lo: mean - half,
            ci_hi: mean + half,
        }
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} [{:.4}, {:.4}] (n={})",
            self.mean,
            self.ci_hi - self.mean,
            self.min,
            self.max,
            self.n
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert_eq!(s.mean, 2.5);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        // var = (2.25+0.25+0.25+2.25)/3 = 5/3
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!(s.ci_lo < s.mean && s.mean < s.ci_hi);
    }

    #[test]
    fn single_observation() {
        let s = Summary::of(&[0.7]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci_lo, 0.7);
        assert_eq!(s.ci_hi, 0.7);
    }

    #[test]
    fn display_is_readable() {
        let s = Summary::of(&[0.5, 0.5]);
        let text = s.to_string();
        assert!(text.contains("0.5"));
        assert!(text.contains("n=2"));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn panics_on_empty() {
        Summary::of(&[]);
    }
}
