//! The adaptive-sampling schedule of Algorithm 1.
//!
//! The estimator starts at `N₀` samples, doubles until `N_max`, and stops
//! early once every hypothesis' empirical-Bernstein deviation is below the
//! target. Each hypothesis `hᵢ` checks its bound at failure probability
//! `δᵢ`, and each of the `R = ⌈log₂(N_max/N₀)⌉` rounds may perform one check,
//! so soundness needs `Σᵢ 2δᵢ = δ / R` (Eq. 13; the factor 2 converts the
//! one-sided Lemma 3 into a two-sided bound).
//!
//! The allocation is optimized as in §III-C: a pilot estimate of each
//! variance gives a *raw* δᵢ via the inverse Bernstein bound (low-variance
//! hypotheses can afford tiny δᵢ), and the raw values are rescaled to meet
//! Eq. 13 exactly.

use crate::bounds::empirical_bernstein_delta;

/// Number of doubling rounds `⌈log₂(n_max / n0)⌉`, at least 1.
pub fn doubling_rounds(n0: usize, n_max: usize) -> usize {
    assert!(n0 > 0);
    if n_max <= n0 {
        return 1;
    }
    let ratio = n_max as f64 / n0 as f64;
    (ratio.log2().ceil() as usize).max(1)
}

/// Allocates per-hypothesis failure probabilities (Eq. 13).
///
/// * `pilot_variances` — sample variances from the pilot pass;
/// * `n_max` — the worst-case sample budget (the bound must hold there);
/// * `eps_target` — the per-round deviation target ε′;
/// * `delta_round` — the probability budget of one round, `δ / R`.
///
/// Returns `δᵢ` with `Σ 2δᵢ = delta_round` (up to float rounding).
pub fn allocate_deltas(
    pilot_variances: &[f64],
    n_max: usize,
    eps_target: f64,
    delta_round: f64,
) -> Vec<f64> {
    let k = pilot_variances.len();
    assert!(k > 0 && delta_round > 0.0 && delta_round < 1.0);
    let budget = delta_round / 2.0;

    let raw: Vec<f64> = pilot_variances
        .iter()
        .map(|&v| empirical_bernstein_delta(n_max.max(2), v.max(0.0), eps_target, 1e-12))
        .collect();
    let total: f64 = raw.iter().sum();
    if total <= 0.0 || !total.is_finite() {
        return vec![budget / k as f64; k];
    }
    raw.iter().map(|&d| d / total * budget).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::empirical_bernstein_epsilon;

    #[test]
    fn rounds_examples() {
        assert_eq!(doubling_rounds(100, 100), 1);
        assert_eq!(doubling_rounds(100, 50), 1);
        assert_eq!(doubling_rounds(100, 200), 1);
        assert_eq!(doubling_rounds(100, 201), 2);
        assert_eq!(doubling_rounds(100, 1600), 4);
        assert_eq!(doubling_rounds(1, 1 << 20), 20);
    }

    #[test]
    fn allocation_satisfies_eq13() {
        let vars = [0.2, 0.01, 0.0, 0.05, 0.25];
        let deltas = allocate_deltas(&vars, 10_000, 0.05, 0.01);
        let total: f64 = deltas.iter().map(|d| 2.0 * d).sum();
        assert!((total - 0.01).abs() < 1e-12, "total={total}");
        assert!(deltas.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn high_variance_hypotheses_get_larger_delta() {
        // A high-variance hypothesis needs a looser δ to hit the same ε at
        // N_max, so after normalization it receives more budget.
        let deltas = allocate_deltas(&[0.25, 0.001], 5_000, 0.05, 0.01);
        assert!(deltas[0] > deltas[1], "{deltas:?}");
    }

    #[test]
    fn uniform_when_variances_equal() {
        let deltas = allocate_deltas(&[0.1; 4], 10_000, 0.05, 0.02);
        for &d in &deltas {
            assert!((d - 0.02 / 2.0 / 4.0).abs() < 1e-12);
        }
    }

    #[test]
    fn allocated_deltas_are_usable_in_the_bound() {
        // End-to-end: with the allocated δᵢ, the Bernstein deviation at
        // N_max is below ε for every hypothesis whose raw δ was feasible.
        let vars = [0.2, 0.02];
        let n_max = 50_000;
        let eps = 0.05;
        let deltas = allocate_deltas(&vars, n_max, eps, 0.01);
        for (v, d) in vars.iter().zip(&deltas) {
            let e = empirical_bernstein_epsilon(n_max, *d, *v);
            assert!(e <= eps * 1.5, "e={e}");
        }
    }
}
