//! Signed relative errors, true/false-zero classification and the Fig. 6
//! histogram.
//!
//! The paper defines the signed relative error of an estimate as
//! `(b̃c(v)/bc(v) − 1) · 100%`, with two special zero classes that drive the
//! ranking analysis of §V-B:
//!
//! * **true zero** — `bc(v) = 0` estimated as 0 (error 0; unavoidable easy
//!   cases that every algorithm gets right);
//! * **false zero** — `bc(v) > 0` estimated as 0 (error −100%; the cases
//!   that destroy ABRA/KADABRA's ranking and that SaPHyRa's exact subspace
//!   eliminates, Lemma 19).

/// Histogram and zero-class breakdown for a batch of estimates.
#[derive(Debug, Clone, PartialEq)]
pub struct RelErrReport {
    /// Fraction of nodes that are true zeros.
    pub true_zero_frac: f64,
    /// Fraction of nodes that are false zeros.
    pub false_zero_frac: f64,
    /// Fraction with `bc(v) = 0` but a positive estimate ("ghost" mass;
    /// impossible for path-sampling estimators, tracked for completeness).
    pub spurious_frac: f64,
    /// Histogram of signed relative errors in percent over
    /// `[-100, clamp_pct]`, `bins` equal-width buckets; errors above
    /// `clamp_pct` land in the last bucket (the paper groups >150% together).
    pub histogram: Vec<f64>,
    /// Lower edge of each histogram bucket, in percent.
    pub bucket_edges: Vec<f64>,
    /// Mean of |signed relative error| over nodes with `bc(v) > 0`.
    pub mean_abs_pct: f64,
}

/// Computes the signed relative error report (Fig. 6).
///
/// `clamp_pct` is the paper's 150% cut-off; `bins` buckets span
/// `[-100%, clamp_pct]`.
pub fn relative_errors(
    estimates: &[f64],
    truth: &[f64],
    clamp_pct: f64,
    bins: usize,
) -> RelErrReport {
    assert_eq!(estimates.len(), truth.len());
    assert!(bins >= 2 && clamp_pct > 0.0);
    let k = estimates.len().max(1);
    let width = (clamp_pct + 100.0) / bins as f64;
    let mut histogram = vec![0.0; bins];
    let bucket_edges: Vec<f64> = (0..bins).map(|i| -100.0 + i as f64 * width).collect();
    let (mut tz, mut fz, mut sp) = (0usize, 0usize, 0usize);
    let mut abs_sum = 0.0;
    let mut abs_n = 0usize;
    for (&est, &bc) in estimates.iter().zip(truth) {
        let pct = if bc == 0.0 {
            if est == 0.0 {
                tz += 1;
                0.0
            } else {
                sp += 1;
                clamp_pct // by convention ∞ clamps into the top bucket
            }
        } else {
            if est == 0.0 {
                fz += 1;
            }
            (est / bc - 1.0) * 100.0
        };
        if bc > 0.0 {
            abs_sum += pct.abs();
            abs_n += 1;
        }
        let clamped = pct.clamp(-100.0, clamp_pct);
        let mut b = ((clamped + 100.0) / width).floor() as usize;
        if b >= bins {
            b = bins - 1;
        }
        histogram[b] += 1.0;
    }
    for h in histogram.iter_mut() {
        *h /= k as f64;
    }
    RelErrReport {
        true_zero_frac: tz as f64 / k as f64,
        false_zero_frac: fz as f64 / k as f64,
        spurious_frac: sp as f64 / k as f64,
        histogram,
        bucket_edges,
        mean_abs_pct: if abs_n > 0 {
            abs_sum / abs_n as f64
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_classes() {
        let truth = [0.0, 0.0, 0.5, 0.5];
        let est = [0.0, 0.1, 0.0, 0.5];
        let r = relative_errors(&est, &truth, 150.0, 10);
        assert_eq!(r.true_zero_frac, 0.25);
        assert_eq!(r.spurious_frac, 0.25);
        assert_eq!(r.false_zero_frac, 0.25);
    }

    #[test]
    fn histogram_sums_to_one() {
        let truth = [0.1, 0.2, 0.0, 0.4, 0.5];
        let est = [0.12, 0.1, 0.0, 0.9, 0.5];
        let r = relative_errors(&est, &truth, 150.0, 25);
        let total: f64 = r.histogram.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(r.bucket_edges.len(), 25);
        assert_eq!(r.bucket_edges[0], -100.0);
    }

    #[test]
    fn exact_estimates_concentrate_at_zero_bucket() {
        let truth = [0.1, 0.2, 0.3];
        let r = relative_errors(&truth.clone(), &truth, 150.0, 10);
        // 0% error: bucket index floor((0+100)/25) = 4.
        assert_eq!(r.histogram[4], 1.0);
        assert_eq!(r.mean_abs_pct, 0.0);
        assert_eq!(r.false_zero_frac, 0.0);
    }

    #[test]
    fn false_zeros_fall_in_lowest_bucket() {
        let truth = [0.5, 0.5];
        let est = [0.0, 0.0];
        let r = relative_errors(&est, &truth, 150.0, 5);
        assert_eq!(r.histogram[0], 1.0);
        assert_eq!(r.false_zero_frac, 1.0);
        assert_eq!(r.mean_abs_pct, 100.0);
    }

    #[test]
    fn overshoot_clamps_to_top_bucket() {
        let truth = [0.1];
        let est = [1.0]; // +900% clamps to 150%
        let r = relative_errors(&est, &truth, 150.0, 5);
        assert_eq!(*r.histogram.last().unwrap(), 1.0);
    }
}
