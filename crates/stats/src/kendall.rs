//! Kendall's τ rank correlation, the alternative measure the paper mentions
//! alongside Spearman's ρ (§II-A). O(k log k) via merge-sort inversion
//! counting.

/// Kendall's τ-a between two value vectors over the same items, ranked with
/// the id tie-break (so both rankings are permutations):
/// `τ = 1 − 4·inversions / (k(k−1))`.
pub fn kendall_tau(estimates: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimates.len(), truth.len());
    let k = estimates.len();
    if k <= 1 {
        return 1.0;
    }
    let ra = crate::spearman::ranks_by_value(estimates);
    let rb = crate::spearman::ranks_by_value(truth);
    // Order items by ranking A, then count inversions of ranking B.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by_key(|&i| ra[i]);
    let mut seq: Vec<usize> = order.iter().map(|&i| rb[i]).collect();
    let inv = count_inversions(&mut seq);
    let pairs = (k * (k - 1) / 2) as f64;
    1.0 - 2.0 * inv as f64 / pairs
}

/// Counts inversions in `seq` (destructively) by merge sort.
fn count_inversions(seq: &mut [usize]) -> u64 {
    let n = seq.len();
    if n < 2 {
        return 0;
    }
    let mut buf = vec![0usize; n];
    merge_count(seq, &mut buf)
}

fn merge_count(seq: &mut [usize], buf: &mut [usize]) -> u64 {
    let n = seq.len();
    if n < 2 {
        return 0;
    }
    let mid = n / 2;
    let (left_buf, right_buf) = buf.split_at_mut(mid);
    let mut inv = {
        let (l, r) = seq.split_at_mut(mid);
        merge_count(l, left_buf) + merge_count(r, right_buf)
    };
    let (mut i, mut j, mut out) = (0usize, mid, 0usize);
    while i < mid && j < n {
        if seq[i] <= seq[j] {
            buf[out] = seq[i];
            i += 1;
        } else {
            // seq[j] jumps over the remaining left elements.
            inv += (mid - i) as u64;
            buf[out] = seq[j];
            j += 1;
        }
        out += 1;
    }
    buf[out..out + (mid - i)].copy_from_slice(&seq[i..mid]);
    let out = out + (mid - i);
    buf[out..out + (n - j)].copy_from_slice(&seq[j..n]);
    seq.copy_from_slice(&buf[..n]);
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kendall_naive(est: &[f64], truth: &[f64]) -> f64 {
        let ra = crate::spearman::ranks_by_value(est);
        let rb = crate::spearman::ranks_by_value(truth);
        let k = est.len();
        let mut conc = 0i64;
        let mut disc = 0i64;
        for i in 0..k {
            for j in (i + 1)..k {
                let a = (ra[i] as i64 - ra[j] as i64).signum();
                let b = (rb[i] as i64 - rb[j] as i64).signum();
                if a == b {
                    conc += 1;
                } else {
                    disc += 1;
                }
            }
        }
        (conc - disc) as f64 / (k * (k - 1) / 2) as f64
    }

    #[test]
    fn agreement_and_reversal() {
        let v = [5.0, 4.0, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&v, &v), 1.0);
        let rev: Vec<f64> = v.iter().rev().copied().collect();
        assert_eq!(kendall_tau(&rev, &v), -1.0);
    }

    #[test]
    fn matches_naive_on_random_inputs() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..20 {
            let k = rng.gen_range(2..40);
            let est: Vec<f64> = (0..k).map(|_| rng.gen::<f64>()).collect();
            let truth: Vec<f64> = (0..k).map(|_| rng.gen::<f64>()).collect();
            let fast = kendall_tau(&est, &truth);
            let slow = kendall_naive(&est, &truth);
            assert!((fast - slow).abs() < 1e-12, "k={k}: {fast} vs {slow}");
        }
    }

    #[test]
    fn single_swap() {
        // One adjacent transposition in 4 items: 1 discordant of 6 pairs.
        let est = [4.0, 2.0, 3.0, 1.0];
        let truth = [4.0, 3.0, 2.0, 1.0];
        assert!((kendall_tau(&est, &truth) - (4.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn degenerate() {
        assert_eq!(kendall_tau(&[], &[]), 1.0);
        assert_eq!(kendall_tau(&[1.0], &[0.0]), 1.0);
    }

    #[test]
    fn tau_never_exceeds_one_in_magnitude() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for _ in 0..50 {
            let k = rng.gen_range(2..25);
            let est: Vec<f64> = (0..k).map(|_| rng.gen::<f64>()).collect();
            let truth: Vec<f64> = (0..k).map(|_| rng.gen::<f64>()).collect();
            let t = kendall_tau(&est, &truth);
            assert!((-1.0..=1.0).contains(&t));
        }
    }
}
