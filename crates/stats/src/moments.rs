//! Streaming mean/variance accumulators.
//!
//! The empirical-Bernstein bound consumes the *sample variance* (Lemma 3's
//! U-statistic `1/(N(N−1)) Σ_{j1<j2} (z_{j1} − z_{j2})²`, equal to the usual
//! unbiased sample variance). SaPHyRa's 0-1 losses admit a closed form from
//! the hit count alone; ABRA's fractional pair-dependencies need Welford.

/// Unbiased sample variance of `n` Bernoulli observations with `hits` ones:
/// `S(N−S) / (N(N−1))` differing pairs over `N(N−1)` ordered pairs, i.e.
/// `p̂(1−p̂) · N/(N−1)`.
pub fn bernoulli_sample_variance(hits: u64, n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    debug_assert!(hits <= n);
    let s = hits as f64;
    let nf = n as f64;
    s * (nf - s) / (nf * (nf - 1.0))
}

/// Welford accumulator for general bounded losses.
#[derive(Debug, Clone, Copy, Default)]
pub struct StreamingMoments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl StreamingMoments {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    #[inline]
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
    }

    /// Adds `count` observations all equal to `x` (used for the implicit
    /// zeros of sparse hit streams).
    pub fn push_repeated(&mut self, x: f64, count: u64) {
        // Merge with a degenerate accumulator of `count` copies of x
        // (Chan's parallel update with m2_b = 0).
        if count == 0 {
            return;
        }
        let nb = count as f64;
        let na = self.n as f64;
        let d = x - self.mean;
        let n = na + nb;
        self.mean += d * nb / n;
        self.m2 += d * d * na * nb / n;
        self.n += count;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (0 when `n < 2`).
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n as f64 - 1.0)).max(0.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_var(xs: &[f64]) -> f64 {
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0)
    }

    #[test]
    fn bernoulli_matches_naive() {
        for (hits, n) in [(3u64, 10u64), (0, 5), (5, 5), (1, 2), (7, 20)] {
            let xs: Vec<f64> = (0..n).map(|i| if i < hits { 1.0 } else { 0.0 }).collect();
            let expect = naive_var(&xs);
            assert!(
                (bernoulli_sample_variance(hits, n) - expect).abs() < 1e-12,
                "hits={hits} n={n}"
            );
        }
        assert_eq!(bernoulli_sample_variance(0, 1), 0.0);
    }

    #[test]
    fn bernoulli_matches_lemma3_pair_statistic() {
        // Direct evaluation of 1/(N(N-1)) Σ_{j1<j2} (z_j1 - z_j2)².
        let (hits, n) = (4u64, 9u64);
        let xs: Vec<f64> = (0..n).map(|i| if i < hits { 1.0 } else { 0.0 }).collect();
        let mut acc = 0.0;
        for i in 0..xs.len() {
            for j in (i + 1)..xs.len() {
                acc += (xs[i] - xs[j]).powi(2);
            }
        }
        let lemma3 = acc / (n as f64 * (n as f64 - 1.0));
        assert!((bernoulli_sample_variance(hits, n) - lemma3).abs() < 1e-12);
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [0.1, 0.9, 0.4, 0.4, 0.0, 1.0, 0.25];
        let mut m = StreamingMoments::new();
        for &x in &xs {
            m.push(x);
        }
        assert_eq!(m.count(), xs.len() as u64);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.sample_variance() - naive_var(&xs)).abs() < 1e-12);
    }

    #[test]
    fn push_repeated_equals_push_loop() {
        let mut a = StreamingMoments::new();
        let mut b = StreamingMoments::new();
        a.push(0.7);
        b.push(0.7);
        a.push_repeated(0.0, 1000);
        for _ in 0..1000 {
            b.push(0.0);
        }
        a.push(0.3);
        b.push(0.3);
        assert_eq!(a.count(), b.count());
        assert!((a.mean() - b.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - b.sample_variance()).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let mut m = StreamingMoments::new();
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
        m.push(0.5);
        assert_eq!(m.sample_variance(), 0.0);
        m.push_repeated(0.5, 0);
        assert_eq!(m.count(), 1);
    }
}
