//! Concentration bounds: Hoeffding, empirical Bernstein (paper Lemma 3,
//! Maurer–Pontil Theorem 4) and the VC sample-complexity bound (Lemma 4).

/// The constant `c` of Lemma 4, "approximately 0.5" per the paper.
pub const C_VC: f64 = 0.5;

/// Two-sided Hoeffding deviation for `n` i.i.d. samples in `[0, 1]` at
/// failure probability `delta`: `ε = sqrt(ln(2/δ) / (2n))`.
pub fn hoeffding_epsilon(n: usize, delta: f64) -> f64 {
    assert!(n > 0 && delta > 0.0 && delta < 1.0);
    ((2.0 / delta).ln() / (2.0 * n as f64)).sqrt()
}

/// Samples needed for a uniform (ε, δ)-estimate over `k` hypotheses via
/// Hoeffding + union bound: `O(1/ε² (ln k + ln 1/δ))` (paper §II-A).
pub fn hoeffding_samples(eps: f64, delta: f64, k: usize) -> usize {
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0 && k > 0);
    let ln_term = (2.0 * k as f64 / delta).ln();
    (ln_term / (2.0 * eps * eps)).ceil() as usize
}

/// One-sided empirical-Bernstein deviation (paper Lemma 3 / Maurer–Pontil):
///
/// `ε(N, δ, V) = sqrt(2 V ln(2/δ) / N) + 7 ln(2/δ) / (3(N − 1))`.
///
/// `var` is the *sample* variance (the U-statistic of Lemma 3). The paper
/// prints `3N` in the linear term; Maurer–Pontil's Theorem 4 has `3(N−1)`,
/// which we use (the conservative direction; identical asymptotics).
pub fn empirical_bernstein_epsilon(n: usize, delta: f64, var: f64) -> f64 {
    assert!(n > 1, "empirical Bernstein needs N >= 2");
    assert!(delta > 0.0 && delta < 1.0);
    let var = var.max(0.0);
    let ln_term = (2.0 / delta).ln();
    (2.0 * var * ln_term / n as f64).sqrt() + 7.0 * ln_term / (3.0 * (n as f64 - 1.0))
}

/// Inverse of [`empirical_bernstein_epsilon`] in `δ`: the smallest failure
/// probability at which `N` samples of variance `var` reach deviation
/// `target_eps` (ε shrinks as δ grows). Returns `min_delta` when even the
/// tiniest δ meets the target, and `1.0` when the target is unreachable at
/// this `N` (such hypotheses need the largest share of the probability
/// budget; the schedule's rescaling step normalizes either way).
pub fn empirical_bernstein_delta(n: usize, var: f64, target_eps: f64, min_delta: f64) -> f64 {
    assert!(n > 1 && target_eps > 0.0);
    let min_delta = min_delta.clamp(f64::MIN_POSITIVE, 0.5);
    // ε is monotone decreasing in δ; binary search on ln δ.
    if empirical_bernstein_epsilon(n, 1.0 - 1e-12, var) > target_eps {
        // Unreachable even with the loosest bound.
        return 1.0;
    }
    if empirical_bernstein_epsilon(n, min_delta, var) <= target_eps {
        return min_delta;
    }
    let (mut lo, mut hi) = (min_delta.ln(), 0.0f64); // δ in [min_delta, 1)
    for _ in 0..100 {
        let mid = 0.5 * (lo + hi);
        if empirical_bernstein_epsilon(n, mid.exp().min(1.0 - 1e-12), var) > target_eps {
            lo = mid; // need larger δ
        } else {
            hi = mid;
        }
    }
    hi.exp().min(1.0)
}

/// VC sample-complexity bound (paper Lemma 4 / Shalev-Shwartz & Ben-David
/// Thm. 6.8): `N = c/ε² (VC + ln(1/δ))` with `c =` [`C_VC`].
pub fn vc_sample_bound(eps: f64, delta: f64, vc_dim: usize) -> usize {
    assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
    let n = C_VC / (eps * eps) * (vc_dim as f64 + (1.0 / delta).ln());
    (n.ceil() as usize).max(2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hoeffding_shrinks_with_n() {
        let e1 = hoeffding_epsilon(100, 0.05);
        let e2 = hoeffding_epsilon(400, 0.05);
        assert!(e2 < e1);
        // Quadrupling n halves ε.
        assert!((e1 / e2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn hoeffding_samples_monotone() {
        assert!(hoeffding_samples(0.05, 0.01, 100) > hoeffding_samples(0.1, 0.01, 100));
        assert!(hoeffding_samples(0.05, 0.01, 1000) > hoeffding_samples(0.05, 0.01, 10));
        // Achieves the target: plug back in with union bound.
        let n = hoeffding_samples(0.05, 0.01, 100);
        assert!(hoeffding_epsilon(n, 0.01 / 100.0) <= 0.05 * 1.0001);
    }

    #[test]
    fn bernstein_beats_hoeffding_at_low_variance() {
        // Variance far below the worst case 1/4: Bernstein is tighter.
        let n = 10_000;
        let eb = empirical_bernstein_epsilon(n, 0.01, 0.001);
        let hf = hoeffding_epsilon(n, 0.005); // comparable two-sided budget
        assert!(eb < hf, "eb={eb} hf={hf}");
    }

    #[test]
    fn bernstein_epsilon_monotonicities() {
        let base = empirical_bernstein_epsilon(1000, 0.01, 0.1);
        assert!(empirical_bernstein_epsilon(2000, 0.01, 0.1) < base);
        assert!(empirical_bernstein_epsilon(1000, 0.001, 0.1) > base);
        assert!(empirical_bernstein_epsilon(1000, 0.01, 0.2) > base);
        // Zero variance leaves only the 1/(N-1) term.
        let z = empirical_bernstein_epsilon(1000, 0.01, 0.0);
        assert!((z - 7.0 * (2.0f64 / 0.01).ln() / (3.0 * 999.0)).abs() < 1e-12);
    }

    #[test]
    fn bernstein_delta_inverts_epsilon() {
        for &(n, var, target) in &[
            (1000usize, 0.05f64, 0.05f64),
            (5000, 0.2, 0.03),
            (200, 0.01, 0.1),
        ] {
            let d = empirical_bernstein_delta(n, var, target, 1e-12);
            if d < 1.0 && d > 1e-12 {
                let eps = empirical_bernstein_epsilon(n, d, var);
                assert!(
                    (eps - target).abs() < 1e-6,
                    "n={n} var={var}: {eps} vs {target}"
                );
            }
        }
    }

    #[test]
    fn bernstein_delta_saturates() {
        // Huge sample budget: even tiny δ reaches the target -> min_delta.
        let d = empirical_bernstein_delta(10_000_000, 1e-6, 0.2, 1e-9);
        assert!(d <= 1e-9 * 1.0001);
        // Tiny sample budget: unreachable -> full budget weight.
        let d = empirical_bernstein_delta(3, 0.25, 1e-6, 1e-9);
        assert_eq!(d, 1.0);
    }

    #[test]
    fn vc_bound_values() {
        // Matches c/ε² (VC + ln 1/δ).
        let n = vc_sample_bound(0.05, 0.01, 4);
        let expect = 0.5 / 0.0025 * (4.0 + 100.0f64.ln());
        assert_eq!(n, expect.ceil() as usize);
        assert!(vc_sample_bound(0.05, 0.01, 8) > n);
    }
}
