//! Spearman's rank correlation (paper Eq. 1) and rank deviation (Fig. 7a).
//!
//! The paper ranks nodes by estimated centrality, breaking ties by node id,
//! so ranks are a permutation of `1..=k` and the closed form
//! `ρ = 1 − 6 Σ dᵣ² / (k(k²−1))` applies.

/// Ranks of `values` where rank 1 is the *largest* value; ties broken by
/// ascending index (the paper's "break the tie by the nodes' IDs").
/// Returns `ranks[i]` = rank of item `i`, in `1..=k`.
///
/// Uses [`f64::total_cmp`] so the comparator is a total order even when a
/// score is NaN (`partial_cmp(..).unwrap_or(Equal)` is intransitive there:
/// `sort_by` may panic with "comparison function does not correctly
/// implement a total order", or yield nondeterministic ranks). Under the
/// IEEE total order a positive NaN sorts above `+inf`, so NaN scores get
/// the best ranks — deterministically.
pub fn ranks_by_value(values: &[f64]) -> Vec<usize> {
    let k = values.len();
    let mut idx: Vec<usize> = (0..k).collect();
    idx.sort_by(|&a, &b| values[b].total_cmp(&values[a]).then(a.cmp(&b)));
    let mut ranks = vec![0usize; k];
    for (r, &i) in idx.iter().enumerate() {
        ranks[i] = r + 1;
    }
    ranks
}

/// Spearman's ρ between two rank permutations of `1..=k` (Eq. 1).
/// `ρ = 1` for `k ≤ 1` (a single node is trivially ranked correctly).
pub fn spearman_rho(ranks_a: &[usize], ranks_b: &[usize]) -> f64 {
    assert_eq!(ranks_a.len(), ranks_b.len());
    let k = ranks_a.len();
    if k <= 1 {
        return 1.0;
    }
    let d2: f64 = ranks_a
        .iter()
        .zip(ranks_b)
        .map(|(&a, &b)| {
            let d = a as f64 - b as f64;
            d * d
        })
        .sum();
    let kf = k as f64;
    1.0 - 6.0 * d2 / (kf * (kf * kf - 1.0))
}

/// Convenience: ρ between an estimate vector and the ground truth over the
/// same item order (both ranked internally with the id tie-break).
pub fn spearman_vs_truth(estimates: &[f64], truth: &[f64]) -> f64 {
    spearman_rho(&ranks_by_value(estimates), &ranks_by_value(truth))
}

/// Average absolute rank displacement as a fraction of `k` (the "rank
/// deviation" of Fig. 7a): `1/k Σ |rank_est − rank_true| / k`.
pub fn rank_deviation(estimates: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(estimates.len(), truth.len());
    let k = estimates.len();
    if k <= 1 {
        return 0.0;
    }
    let ra = ranks_by_value(estimates);
    let rb = ranks_by_value(truth);
    let total: f64 = ra
        .iter()
        .zip(&rb)
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .sum();
    total / (k as f64 * k as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_descending_with_id_tiebreak() {
        let r = ranks_by_value(&[0.5, 0.9, 0.5, 0.1]);
        // 0.9 -> 1; first 0.5 -> 2; second 0.5 -> 3; 0.1 -> 4.
        assert_eq!(r, vec![2, 1, 3, 4]);
    }

    #[test]
    fn nan_scores_rank_deterministically_without_panicking() {
        // A NaN score must not perturb the ranks of the finite scores or
        // trip sort_by's total-order check. Under total_cmp a positive NaN
        // sorts above +inf: NaN -> 1, 5.0 -> 2, 3.0 -> 3.
        assert_eq!(ranks_by_value(&[5.0, f64::NAN, 3.0]), vec![2, 1, 3]);
        // Deterministic under permutation-heavy input: many NaNs tie-break
        // by index, and repeated calls agree.
        let vals: Vec<f64> = (0..64)
            .map(|i| if i % 3 == 0 { f64::NAN } else { i as f64 })
            .collect();
        let r1 = ranks_by_value(&vals);
        let r2 = ranks_by_value(&vals);
        assert_eq!(r1, r2);
        let mut sorted = r1.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (1..=64).collect::<Vec<_>>(),
            "ranks not a permutation"
        );
    }

    #[test]
    fn perfect_and_reversed_correlation() {
        let a = vec![1, 2, 3, 4, 5];
        let b = vec![5, 4, 3, 2, 1];
        assert_eq!(spearman_rho(&a, &a), 1.0);
        assert_eq!(spearman_rho(&a, &b), -1.0);
    }

    #[test]
    fn value_interface_matches_rank_interface() {
        let est = [0.3, 0.1, 0.9, 0.7];
        let truth = [0.25, 0.2, 0.8, 0.6];
        let rho = spearman_vs_truth(&est, &truth);
        assert_eq!(rho, 1.0); // same ordering
                              // Exactly reversed ordering of the truth ranks [3,4,1,2] -> [2,1,4,3].
        let est_bad = [0.7, 0.9, 0.1, 0.3];
        assert_eq!(spearman_vs_truth(&est_bad, &truth), -1.0);
    }

    #[test]
    fn single_swap_known_value() {
        // k=4, swap adjacent ranks 2,3: Σd² = 2, ρ = 1 - 12/60 = 0.8.
        let a = vec![1, 2, 3, 4];
        let b = vec![1, 3, 2, 4];
        assert!((spearman_rho(&a, &b) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn degenerate_sizes() {
        assert_eq!(spearman_rho(&[1], &[1]), 1.0);
        assert_eq!(spearman_rho(&[], &[]), 1.0);
        assert_eq!(rank_deviation(&[], &[]), 0.0);
        assert_eq!(rank_deviation(&[1.0], &[2.0]), 0.0);
    }

    #[test]
    fn rank_deviation_values() {
        // Reversal of 4 items: displacements 3,1,1,3 = 8; 8/16 = 0.5.
        let est = [4.0, 3.0, 2.0, 1.0];
        let truth = [1.0, 2.0, 3.0, 4.0];
        assert!((rank_deviation(&est, &truth) - 0.5).abs() < 1e-12);
        assert_eq!(rank_deviation(&truth, &truth), 0.0);
    }

    #[test]
    fn ranking_invariant_to_monotone_transform() {
        let truth = [0.01, 0.5, 0.3, 0.02, 0.9];
        let est: Vec<f64> = truth.iter().map(|x| x * 100.0 + 3.0).collect();
        assert_eq!(spearman_vs_truth(&est, &truth), 1.0);
    }
}
