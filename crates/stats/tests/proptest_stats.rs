//! Property-based invariants of the statistical toolkit.

use proptest::prelude::*;
use saphyra_stats::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn spearman_bounds_and_identity(values in proptest::collection::vec(-1e3f64..1e3, 2..40)) {
        let rho = spearman_vs_truth(&values, &values);
        prop_assert!((rho - 1.0).abs() < 1e-12);
        let reversed: Vec<f64> = values.iter().map(|x| -x).collect();
        let anti = spearman_vs_truth(&reversed, &values);
        prop_assert!((-1.0..=1.0).contains(&anti));
    }

    #[test]
    fn spearman_within_bounds(a in proptest::collection::vec(0f64..1.0, 2..30),
                              b in proptest::collection::vec(0f64..1.0, 2..30)) {
        let k = a.len().min(b.len());
        let rho = spearman_vs_truth(&a[..k], &b[..k]);
        prop_assert!((-1.0 - 1e-12..=1.0 + 1e-12).contains(&rho));
    }

    #[test]
    fn kendall_within_bounds_and_consistent_sign(a in proptest::collection::vec(0f64..1.0, 2..25),
                                                 b in proptest::collection::vec(0f64..1.0, 2..25)) {
        let k = a.len().min(b.len());
        let tau = kendall_tau(&a[..k], &b[..k]);
        prop_assert!((-1.0..=1.0).contains(&tau));
        // Perfect agreement in ranks gives τ = ρ = 1.
        let tau_self = kendall_tau(&a[..k], &a[..k]);
        prop_assert!((tau_self - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_deviation_bounds(a in proptest::collection::vec(0f64..1.0, 1..40),
                             b in proptest::collection::vec(0f64..1.0, 1..40)) {
        let k = a.len().min(b.len());
        let rd = rank_deviation(&a[..k], &b[..k]);
        prop_assert!((0.0..=0.5 + 1e-12).contains(&rd), "rd = {rd}");
        prop_assert_eq!(rank_deviation(&a[..k], &a[..k]), 0.0);
    }

    #[test]
    fn bernoulli_variance_matches_welford(hits in 0u64..50, extra in 0u64..50) {
        let n = hits + extra;
        prop_assume!(n >= 2);
        let mut m = StreamingMoments::new();
        m.push_repeated(1.0, hits);
        m.push_repeated(0.0, extra);
        prop_assert!((bernoulli_sample_variance(hits, n) - m.sample_variance()).abs() < 1e-12);
    }

    #[test]
    fn bernstein_inverse_roundtrip(n in 10usize..100_000, var in 0.0f64..0.25, target in 0.001f64..0.5) {
        let d = empirical_bernstein_delta(n, var, target, 1e-12);
        if d > 1e-12 && d < 1.0 {
            let eps = empirical_bernstein_epsilon(n, d, var);
            prop_assert!((eps - target).abs() < 1e-5, "eps {eps} target {target}");
        }
    }

    #[test]
    fn bernstein_monotone_in_n(n in 10usize..10_000, var in 0.0f64..0.25) {
        let a = empirical_bernstein_epsilon(n, 0.05, var);
        let b = empirical_bernstein_epsilon(2 * n, 0.05, var);
        prop_assert!(b <= a + 1e-12);
    }

    #[test]
    fn vc_bound_monotone(eps in 0.01f64..0.3, delta in 0.001f64..0.3, vc in 1usize..20) {
        let n1 = vc_sample_bound(eps, delta, vc);
        prop_assert!(vc_sample_bound(eps, delta, vc + 1) >= n1);
        prop_assert!(vc_sample_bound(eps / 2.0, delta, vc) >= n1);
    }

    #[test]
    fn summary_mean_within_min_max(xs in proptest::collection::vec(-1e6f64..1e6, 1..50)) {
        let s = Summary::of(&xs);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.ci_lo <= s.mean && s.mean <= s.ci_hi);
    }

    #[test]
    fn relerr_histogram_is_a_distribution(est in proptest::collection::vec(0f64..1.0, 1..60),
                                          truth in proptest::collection::vec(0f64..1.0, 1..60)) {
        let k = est.len().min(truth.len());
        let rep = relative_errors(&est[..k], &truth[..k], 150.0, 10);
        let total: f64 = rep.histogram.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(rep.true_zero_frac + rep.false_zero_frac + rep.spurious_frac <= 1.0 + 1e-9);
    }

    #[test]
    fn delta_allocation_respects_budget(vars in proptest::collection::vec(0.0f64..0.25, 1..30),
                                        budget in 0.0001f64..0.2) {
        let deltas = allocate_deltas(&vars, 10_000, 0.05, budget);
        let total: f64 = deltas.iter().map(|d| 2.0 * d).sum();
        prop_assert!((total - budget).abs() < 1e-9);
        prop_assert!(deltas.iter().all(|&d| d >= 0.0));
    }
}
