//! Table II bench: the per-network preprocessing pipeline (generation,
//! decomposition, diameter estimation) behind the summary table.

use criterion::{criterion_group, criterion_main, Criterion};
use saphyra::bc::BcIndex;
use saphyra_gen::datasets::{SimNetwork, SizeClass};
use saphyra_graph::bfs::BfsWorkspace;
use saphyra_graph::diameter::double_sweep_lower;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

fn bench_table2(c: &mut Criterion) {
    for net in SimNetwork::all() {
        let g = net.build(SizeClass::Tiny, 1);
        c.bench_function(&format!("table2_index_build/{}", net.name()), |b| {
            b.iter(|| std::hint::black_box(BcIndex::new(&g).gamma))
        });
        let mut ws = BfsWorkspace::new(g.num_nodes());
        c.bench_function(&format!("table2_double_sweep/{}", net.name()), |b| {
            b.iter(|| std::hint::black_box(double_sweep_lower(&g, 0, &mut ws)))
        });
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_table2
}
criterion_main!(benches);
