//! Fig. 7 / Table III bench: the road-network case study — area extraction
//! and per-area SaPHyRa_bc runs, showing time shrinking with area size.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::{BcIndex, SaphyraBcConfig};
use saphyra_gen::datasets::{road_sim, SizeClass};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
}

fn bench_fig7(c: &mut Criterion) {
    let road = road_sim(SizeClass::Tiny, 1);
    let g = &road.graph;
    let index = BcIndex::new(g);
    c.bench_function("table3_area_extraction", |b| {
        b.iter(|| {
            let areas = road.case_study_areas();
            let total: usize = areas.iter().map(|a| a.nodes(&road).len()).sum();
            std::hint::black_box(total)
        })
    });
    for area in road.case_study_areas() {
        let targets = area.nodes(&road);
        c.bench_function(&format!("fig7_area_rank/{}", area.name), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                let est = index.rank_subset(&targets, &SaphyraBcConfig::new(0.05, 0.1), &mut rng);
                std::hint::black_box(est.stats.samples)
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig7
}
criterion_main!(benches);
