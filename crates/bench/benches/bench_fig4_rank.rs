//! Fig. 4 bench: the quality-evaluation path — a SaPHyRa_bc subset run
//! followed by Spearman correlation against exact ground truth.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::{BcIndex, SaphyraBcConfig};
use saphyra_bench::random_subset;
use saphyra_gen::datasets::{SimNetwork, SizeClass};
use saphyra_graph::brandes::betweenness_exact;
use saphyra_stats::spearman_vs_truth;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
}

fn bench_fig4(c: &mut Criterion) {
    let g = SimNetwork::Flickr.build(SizeClass::Tiny, 1);
    let truth = betweenness_exact(&g);
    let index = BcIndex::new(&g);
    let mut rng = StdRng::seed_from_u64(5);
    let subset = random_subset(&g, 100.min(g.num_nodes()), &mut rng);
    let truth_sub: Vec<f64> = subset.iter().map(|&v| truth[v as usize]).collect();
    for eps in [0.1, 0.05] {
        c.bench_function(&format!("fig4_rank_quality_pipeline/eps{eps}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                let est = index.rank_subset(&subset, &SaphyraBcConfig::new(eps, 0.1), &mut rng);
                std::hint::black_box(spearman_vs_truth(&est.bc, &truth_sub))
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig4
}
criterion_main!(benches);
