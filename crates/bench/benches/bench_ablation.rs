//! Ablation bench (DESIGN.md §5): full pipeline vs no-exact-subspace vs
//! fixed VC budget vs no-bicomponents (KADABRA), timed on one network.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::{BcIndex, SaphyraBcConfig};
use saphyra_bench::{random_subset, run_algo, Algo};
use saphyra_gen::datasets::{SimNetwork, SizeClass};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
}

fn bench_ablation(c: &mut Criterion) {
    let g = SimNetwork::LiveJournal.build(SizeClass::Tiny, 1);
    let index = BcIndex::new(&g);
    let mut rng = StdRng::seed_from_u64(11);
    let subset = random_subset(&g, 100.min(g.num_nodes()), &mut rng);
    let variants: Vec<(&str, SaphyraBcConfig)> = vec![
        ("full", SaphyraBcConfig::new(0.05, 0.1)),
        (
            "no_exact_subspace",
            SaphyraBcConfig::new(0.05, 0.1).without_exact_subspace(),
        ),
        (
            "fixed_budget",
            SaphyraBcConfig::new(0.05, 0.1).with_fixed_budget(),
        ),
    ];
    for (name, cfg) in variants {
        c.bench_function(&format!("ablation/{name}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                std::hint::black_box(index.rank_subset(&subset, &cfg, &mut rng).stats.samples)
            })
        });
    }
    c.bench_function("ablation/no_bicomponents_kadabra", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            std::hint::black_box(run_algo(Algo::Kadabra, &g, &subset, 0.05, 0.1, seed).samples)
        })
    });

    // Exact-oracle ablation: bicomponent-shattered weighted Brandes vs the
    // textbook algorithm, on the pendant-heavy network where shattering wins.
    let flickr = SimNetwork::Flickr.build(SizeClass::Tiny, 1);
    let flickr_index = BcIndex::new(&flickr);
    c.bench_function("ablation/exact_brandes", |b| {
        b.iter(|| std::hint::black_box(saphyra_graph::brandes::betweenness_exact(&flickr)[0]))
    });
    c.bench_function("ablation/exact_shattered", |b| {
        b.iter(|| std::hint::black_box(flickr_index.exact_betweenness_shattered()[0]))
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_ablation
}
criterion_main!(benches);
