//! Substrate microbenches: BFS, biconnected decomposition, block-cut tree +
//! out-reach, and one Brandes single-source accumulation — the building
//! blocks whose costs Lemma 18 / Lemma 25 reason about.

use criterion::{criterion_group, criterion_main, Criterion};
use saphyra_gen::datasets::{SimNetwork, SizeClass};
use saphyra_graph::bfs::BfsWorkspace;
use saphyra_graph::{Bicomps, BlockCutTree};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

fn bench_substrate(c: &mut Criterion) {
    let g = SimNetwork::LiveJournal.build(SizeClass::Tiny, 1);
    let n = g.num_nodes();

    let mut ws = BfsWorkspace::new(n);
    c.bench_function("bfs_full_counting", |b| {
        b.iter(|| {
            ws.run_counting(&g, 0, None, |_| true);
            std::hint::black_box(ws.reached())
        })
    });

    c.bench_function("bicomp_decomposition", |b| {
        b.iter(|| std::hint::black_box(Bicomps::compute(&g).num_bicomps))
    });

    let bic = Bicomps::compute(&g);
    c.bench_function("blockcut_tree_and_outreach", |b| {
        b.iter(|| {
            let tree = BlockCutTree::compute(&bic);
            let or = saphyra::bc::Outreach::compute(&bic, &tree);
            std::hint::black_box(or.total_weight)
        })
    });

    let mut delta = vec![0.0f64; n];
    let mut bc = vec![0.0f64; n];
    c.bench_function("brandes_single_source", |b| {
        b.iter(|| {
            ws.run_counting(&g, 0, None, |_| true);
            for i in (0..ws.order.len()).rev() {
                let v = ws.order[i];
                let coeff = (1.0 + delta[v as usize]) / ws.sigma(v);
                if ws.dist(v) > 0 {
                    for &w in g.neighbors(v) {
                        if ws.visited(w) && ws.dist(w) + 1 == ws.dist(v) {
                            delta[w as usize] += ws.sigma(w) * coeff;
                        }
                    }
                    bc[v as usize] += delta[v as usize];
                }
            }
            for &v in &ws.order {
                delta[v as usize] = 0.0;
            }
            std::hint::black_box(bc[0])
        })
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_substrate
}
criterion_main!(benches);
