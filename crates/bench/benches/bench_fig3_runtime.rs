//! Fig. 3 bench: end-to-end running time of each algorithm at
//! representative ε values (reduced network sizes; the full-scale series
//! comes from `--bin fig3`).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra_bench::{random_subset, run_algo, Algo};
use saphyra_gen::datasets::{SimNetwork, SizeClass};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
}

fn bench_fig3(c: &mut Criterion) {
    let g = SimNetwork::LiveJournal.build(SizeClass::Tiny, 1);
    let mut rng = StdRng::seed_from_u64(9);
    let subset = random_subset(&g, 100.min(g.num_nodes()), &mut rng);
    for eps in [0.1, 0.05] {
        for algo in Algo::all() {
            let id = format!("fig3_runtime/{}/eps{eps}", algo.name());
            c.bench_function(&id, |b| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    std::hint::black_box(run_algo(algo, &g, &subset, eps, 0.1, seed).samples)
                })
            });
        }
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig3
}
criterion_main!(benches);
