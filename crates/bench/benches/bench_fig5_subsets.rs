//! Fig. 5 bench: SaPHyRa_bc running time as a function of subset size —
//! the scaling the paper reads off Fig. 5 / the NYC-vs-FL comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::{BcIndex, SaphyraBcConfig};
use saphyra_bench::random_subset;
use saphyra_gen::datasets::{SimNetwork, SizeClass};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
}

fn bench_fig5(c: &mut Criterion) {
    let g = SimNetwork::Orkut.build(SizeClass::Tiny, 1);
    let index = BcIndex::new(&g);
    for size in [10usize, 50, 100] {
        let mut rng = StdRng::seed_from_u64(size as u64);
        let subset = random_subset(&g, size.min(g.num_nodes()), &mut rng);
        c.bench_function(&format!("fig5_subset_size/{size}"), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut rng = StdRng::seed_from_u64(seed);
                let est = index.rank_subset(&subset, &SaphyraBcConfig::new(0.05, 0.1), &mut rng);
                std::hint::black_box(est.stats.samples)
            })
        });
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig5
}
criterion_main!(benches);
