//! Sampler microbenches, including the bidirectional-vs-unidirectional BFS
//! ablation (Lemma 21) and the relative per-sample cost of the three
//! sampling styles (Gen_bc path, KADABRA path, ABRA node-pair).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saphyra::bc::{build_a_index, BcApproxProblem, Outreach};
use saphyra_gen::datasets::{SimNetwork, SizeClass};
use saphyra_graph::bbbfs::BiBfs;
use saphyra_graph::bfs::{sample_path_to, BfsWorkspace};
use saphyra_graph::{Bicomps, BlockCutTree};
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

fn bench_samplers(c: &mut Criterion) {
    let g = SimNetwork::LiveJournal.build(SizeClass::Tiny, 1);
    let n = g.num_nodes();
    let bic = Bicomps::compute(&g);
    let tree = BlockCutTree::compute(&bic);
    let outreach = Outreach::compute(&bic, &tree);
    let mut rng = StdRng::seed_from_u64(7);
    let targets: Vec<u32> = (0..100u32).collect();
    let a_index = build_a_index(n, &targets);

    // Gen_bc: multistage PISP sampling with rejection.
    let mut prob = BcApproxProblem::new(&g, &bic, &outreach, &targets, &a_index, 3);
    c.bench_function("gen_bc_sample", |b| {
        b.iter(|| std::hint::black_box(prob.sample_approx_path(&mut rng).len()))
    });

    // KADABRA-style: uniform pair + bidirectional BFS path.
    let mut bb = BiBfs::new(n);
    c.bench_function("kadabra_pair_sample_bidirectional", |b| {
        b.iter(|| {
            let (s, t) = random_pair(n, &mut rng);
            if let Some(res) = bb.query(&g, s, t, |_| true) {
                std::hint::black_box(bb.sample_path(&g, res, &mut rng, |_| true).len());
            }
        })
    });

    // Ablation: the same sample via a full unidirectional BFS.
    let mut ws = BfsWorkspace::new(n);
    c.bench_function("pair_sample_unidirectional", |b| {
        b.iter(|| {
            let (s, t) = random_pair(n, &mut rng);
            ws.run_counting(&g, s, Some(t), |_| true);
            if ws.visited(t) {
                std::hint::black_box(sample_path_to(&ws, &g, t, &mut rng, |_| true).len());
            }
        })
    });

    // ABRA-style: full pair-dependency accumulation (costed via its BFS).
    c.bench_function("abra_pair_bfs", |b| {
        b.iter(|| {
            let (s, t) = random_pair(n, &mut rng);
            ws.run_counting(&g, s, Some(t), |_| true);
            std::hint::black_box(ws.reached())
        })
    });
}

fn random_pair(n: usize, rng: &mut StdRng) -> (u32, u32) {
    let s = rng.gen_range(0..n as u32);
    let mut t = rng.gen_range(0..n as u32 - 1);
    if t >= s {
        t += 1;
    }
    (s, t)
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_samplers
}
criterion_main!(benches);
