//! Ranking-service concurrency/throughput bench: requests/sec against an
//! in-process `saphyra_service` server on the Flickr-tiny analogue,
//! comparing the **cold** path (unique seeds — every request samples) with
//! the **hot** path (repeated request — served from the LRU response
//! cache).
//!
//! Prints an explicit table (stderr) with requests/sec and the observed
//! cache hit counts, so the cache-hit fast path is a number in the bench
//! output. Responses are byte-identical per seed whatever the worker
//! count; the sweep only changes wall-clock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use saphyra_service::http::request;
use saphyra_service::server::{serve_with, Service, ServiceConfig};
use saphyra_service::GraphEntry;

const CLIENT_THREADS: usize = 8;
const REQUESTS_PER_ROUND: usize = 64;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

fn start_server(workers: usize) -> (saphyra_service::ServerHandle, String) {
    let cfg = ServiceConfig {
        workers,
        cache_capacity: 256,
    };
    let service = Arc::new(Service::new(cfg));
    let graph =
        saphyra_gen::datasets::SimNetwork::Flickr.build(saphyra_gen::datasets::SizeClass::Tiny, 1);
    service.registry().insert(GraphEntry::build("bench", graph));
    let handle = serve_with("127.0.0.1:0", service).expect("bind");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn rank_body(seed: u64) -> String {
    format!(r#"{{"graph":"bench","targets":[1,5,9,13,21,34],"eps":0.2,"delta":0.1,"seed":{seed}}}"#)
}

/// Fires `REQUESTS_PER_ROUND` requests from `CLIENT_THREADS` concurrent
/// clients; returns elapsed seconds.
fn fire_round(addr: &str, seed_of: impl Fn(usize) -> u64 + Sync) -> f64 {
    let done = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..CLIENT_THREADS {
            let done = &done;
            let seed_of = &seed_of;
            scope.spawn(move || {
                let per = REQUESTS_PER_ROUND / CLIENT_THREADS;
                for i in 0..per {
                    let body = rank_body(seed_of(t * per + i));
                    let resp = request(addr, "POST", "/rank", Some(&body)).expect("request");
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(done.load(Ordering::Relaxed) as usize, REQUESTS_PER_ROUND);
    t0.elapsed().as_secs_f64()
}

fn bench_service(c: &mut Criterion) {
    let (handle, addr) = start_server(0);

    // Criterion timings: one cold request (fresh seed per iteration) vs one
    // hot request (fixed seed, served from cache after the first).
    let seed = AtomicU64::new(1_000);
    c.bench_function("service_rank/cold", |b| {
        b.iter(|| {
            let body = rank_body(seed.fetch_add(1, Ordering::Relaxed));
            request(&addr, "POST", "/rank", Some(&body)).unwrap()
        })
    });
    c.bench_function("service_rank/hot", |b| {
        b.iter(|| request(&addr, "POST", "/rank", Some(&rank_body(7))).unwrap())
    });

    // Explicit throughput table: 8 concurrent clients, cold vs hot rounds.
    let service = Arc::clone(handle.service());
    eprintln!("\nservice throughput (flickr tiny, {CLIENT_THREADS} concurrent clients, {REQUESTS_PER_ROUND} requests/round):");
    eprintln!(
        "{:>8} {:>12} {:>12} {:>12}",
        "round", "req/s", "hits", "misses"
    );
    let round_seed = AtomicU64::new(100_000);
    for round in ["cold", "hot", "hot2"] {
        let (h0, m0) = (service.cache_hits(), service.cache_misses());
        let dt = if round == "cold" {
            let base = round_seed.fetch_add(REQUESTS_PER_ROUND as u64, Ordering::Relaxed);
            fire_round(&addr, |i| base + i as u64)
        } else {
            fire_round(&addr, |_| 31) // one fixed request — pure cache path
        };
        let rate = REQUESTS_PER_ROUND as f64 / dt;
        eprintln!(
            "{round:>8} {rate:>12.0} {:>12} {:>12}",
            service.cache_hits() - h0,
            service.cache_misses() - m0
        );
    }
    eprintln!();

    handle.shutdown_and_join();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_service
}
criterion_main!(benches);
