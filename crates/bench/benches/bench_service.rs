//! Ranking-service concurrency/throughput bench: requests/sec against an
//! in-process `saphyra_service` server on the Flickr-tiny analogue,
//! comparing the **cold** path (unique seeds — every request samples), the
//! **hot** path (repeated request — served from the LRU response cache),
//! and the **shared** path (identical concurrent cold requests collapsed
//! by single-flight).
//!
//! Each hot round runs twice: once with one-shot clients (a fresh TCP
//! connection per request — the PR 2 connection-per-request baseline) and
//! once with persistent keep-alive clients (one pooled connection per
//! client thread), so the keep-alive win on the cache-hit fast path is an
//! explicit number in the bench output, alongside the observed cache
//! hit/miss/shared and computation counts.
//!
//! Two reactor-era scenarios ride along: **pipelined** rounds (each
//! client writes its whole batch before reading any response — the
//! event-driven runtime's request-bounded worker pool must keep up) and a
//! **slow-loris** round (64 parked idle connections while the hot
//! keep-alive round runs — under the old thread-per-connection runtime
//! this collapsed throughput to the idle-timeout rate). The keep-alive vs
//! pipelined before/after table is also recorded in `BENCH_service.json`
//! at the workspace root.
//!
//! The **distinct_cold_targets** round measures cross-request batching: 8
//! clients fire barrier-synced waves of cold k-path requests with
//! pairwise-disjoint target sets (same seed within a wave), against a
//! gathering server and an unbatched one; the batched arm must be ≥ 2x,
//! since one shared walk stream replaces 8 independent ones.
//!
//! The **sharded_rank** round prices the sharded topology: the same cold
//! round served through a router fanning sampling rounds out to two shard
//! backends vs the standalone server, plus the router's per-round merge
//! cost from its `/healthz` telemetry. Recorded in `BENCH_service.json`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use saphyra_service::http::{request, Client};
use saphyra_service::persist;
use saphyra_service::server::{serve_with, Role, Service, ServiceConfig};
use saphyra_service::GraphEntry;

const CLIENT_THREADS: usize = 8;
const REQUESTS_PER_ROUND: usize = 64;

// Short measurement windows on purpose: every one-shot request parks a
// server-side socket in TIME-WAIT for 60 s, and tens of thousands of those
// exhaust the loopback ephemeral-port space — new connections then collide
// with TIME-WAIT tuples and stall in retransmission backoff for minutes.
// Sub-second windows keep the one-shot churn under ~10k sockets (each
// loopback connection can park BOTH endpoints in TIME-WAIT), safely inside
// the ~28k default port range. (Keep-alive traffic has no such limit — the
// whole point of the tentpole — so the keep-alive benches run first, on an
// unpoisoned port space.)
fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(100))
}

fn start_server(workers: usize) -> (saphyra_service::ServerHandle, String) {
    // Gathering off: the legacy cold rounds measure per-request sampling
    // cost, and a nonzero window would tax every distinct-seed request
    // with a sleep it can never amortize (distinct seeds never coalesce).
    start_server_with_window(workers, Duration::ZERO)
}

fn start_server_with_window(
    workers: usize,
    batch_window: Duration,
) -> (saphyra_service::ServerHandle, String) {
    let cfg = ServiceConfig {
        workers,
        cache_capacity: 256,
        batch_window,
        ..ServiceConfig::default()
    };
    let service = Arc::new(Service::new(cfg));
    let graph =
        saphyra_gen::datasets::SimNetwork::Flickr.build(saphyra_gen::datasets::SizeClass::Tiny, 1);
    service.registry().insert(GraphEntry::build("bench", graph));
    let handle = serve_with("127.0.0.1:0", service).expect("bind");
    let addr = handle.addr().to_string();
    (handle, addr)
}

fn rank_body(seed: u64) -> String {
    format!(r#"{{"graph":"bench","targets":[1,5,9,13,21,34],"eps":0.2,"delta":0.1,"seed":{seed}}}"#)
}

/// A cold k-path request for the `distinct_cold_targets` round: sampling
/// (not routing) dominates at this ε, and k-path is the measure whose
/// batched estimator genuinely shares draws — one walk stream scores every
/// subscriber's target set.
fn kpath_body(targets: &str, seed: u64) -> String {
    format!(
        r#"{{"graph":"bench","targets":{targets},"measure":"kpath","khops":8,"eps":0.005,"delta":0.1,"seed":{seed}}}"#
    )
}

/// Barrier-synced waves: all `CLIENT_THREADS` keep-alive clients release
/// together, each posting a COLD k-path request with its own disjoint
/// target set and the wave's common seed (fresh seed per wave, so nothing
/// is ever cached). Returns elapsed seconds for all waves.
fn fire_distinct_target_waves(addr: &str, sets: &[String], waves: usize, seed_base: u64) -> f64 {
    let barrier = std::sync::Barrier::new(CLIENT_THREADS);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for set in sets.iter().take(CLIENT_THREADS) {
            let barrier = &barrier;
            scope.spawn(move || {
                let mut client = Client::new(addr);
                for w in 0..waves {
                    barrier.wait();
                    let body = kpath_body(set, seed_base + w as u64);
                    let resp = client
                        .request("POST", "/rank", Some(&body))
                        .expect("request");
                    assert_eq!(resp.status, 200, "{}", resp.body);
                }
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

/// Fires `REQUESTS_PER_ROUND` requests from `CLIENT_THREADS` concurrent
/// clients; returns elapsed seconds. `keep_alive` selects persistent
/// pooled connections (one per client thread) vs a fresh connection per
/// request (the PR 2 baseline).
fn fire_round(addr: &str, keep_alive: bool, seed_of: impl Fn(usize) -> u64 + Sync) -> f64 {
    let done = AtomicU64::new(0);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..CLIENT_THREADS {
            let done = &done;
            let seed_of = &seed_of;
            scope.spawn(move || {
                let mut client = keep_alive.then(|| Client::new(addr));
                let per = REQUESTS_PER_ROUND / CLIENT_THREADS;
                for i in 0..per {
                    let body = rank_body(seed_of(t * per + i));
                    let resp = match client.as_mut() {
                        Some(c) => c.request("POST", "/rank", Some(&body)).expect("request"),
                        None => request(addr, "POST", "/rank", Some(&body)).expect("request"),
                    };
                    assert_eq!(resp.status, 200, "{}", resp.body);
                    done.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });
    assert_eq!(done.load(Ordering::Relaxed) as usize, REQUESTS_PER_ROUND);
    t0.elapsed().as_secs_f64()
}

/// Fires `REQUESTS_PER_ROUND` identical hot requests, each client thread
/// pipelining its whole share over one connection (all requests written
/// before any response is read); returns elapsed seconds.
fn fire_round_pipelined(addr: &str, seed: u64) -> f64 {
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..CLIENT_THREADS {
            scope.spawn(move || {
                let mut client = Client::new(addr);
                let body = rank_body(seed);
                let batch: Vec<(&str, &str, Option<&str>)> = (0..REQUESTS_PER_ROUND
                    / CLIENT_THREADS)
                    .map(|_| ("POST", "/rank", Some(body.as_str())))
                    .collect();
                let responses = client.pipeline(&batch).expect("pipeline");
                for r in &responses {
                    assert_eq!(r.status, 200, "{}", r.body);
                }
            });
        }
    });
    t0.elapsed().as_secs_f64()
}

fn bench_service(c: &mut Criterion) {
    let (handle, addr) = start_server(0);

    // Criterion timings: one hot request (fixed seed, served from cache
    // after the first) over a pooled keep-alive connection vs a fresh
    // connection per request, plus the cold path (fresh seed per
    // iteration). Keep-alive first — see the note on config() above.
    let seed = AtomicU64::new(1_000);
    c.bench_function("service_rank/hot_keepalive", |b| {
        let mut client = Client::new(addr.as_str());
        b.iter(|| {
            client
                .request("POST", "/rank", Some(&rank_body(7)))
                .unwrap()
        })
    });
    c.bench_function("service_rank/cold", |b| {
        b.iter(|| {
            let body = rank_body(seed.fetch_add(1, Ordering::Relaxed));
            request(&addr, "POST", "/rank", Some(&body)).unwrap()
        })
    });
    c.bench_function("service_rank/hot_oneshot", |b| {
        b.iter(|| request(&addr, "POST", "/rank", Some(&rank_body(7))).unwrap())
    });

    // Explicit throughput table: 8 concurrent clients. "hot" rounds replay
    // one cached request; "shared" fires 64 identical COLD requests that
    // single-flight must collapse into one computation. The keep-alive
    // sweep (ka rounds vs oneshot) is the tentpole number.
    let service = Arc::clone(handle.service());
    eprintln!("\nservice throughput (flickr tiny, {CLIENT_THREADS} concurrent clients, {REQUESTS_PER_ROUND} requests/round):");
    eprintln!(
        "{:>16} {:>12} {:>8} {:>8} {:>8} {:>9}",
        "round", "req/s", "hits", "misses", "shared", "computed"
    );
    let round_seed = AtomicU64::new(100_000);
    let rounds: &[(&str, bool)] = &[
        ("cold-oneshot", false),
        ("cold-ka", true),
        ("hot-oneshot", false),
        ("hot-oneshot2", false),
        ("hot-ka", true),
        ("hot-ka2", true),
        ("shared-ka", true),
    ];
    for &(round, keep_alive) in rounds {
        let (h0, m0) = (service.cache_hits(), service.cache_misses());
        let (s0, c0) = (service.cache_shared(), service.computations());
        let dt = if round.starts_with("cold") {
            let base = round_seed.fetch_add(REQUESTS_PER_ROUND as u64, Ordering::Relaxed);
            fire_round(&addr, keep_alive, |i| base + i as u64)
        } else if round.starts_with("shared") {
            // One fresh seed for the whole round: all 64 requests are cold
            // and identical, so single-flight collapses them.
            let seed = round_seed.fetch_add(1, Ordering::Relaxed);
            fire_round(&addr, keep_alive, move |_| seed)
        } else {
            fire_round(&addr, keep_alive, |_| 31) // one fixed request — cache path
        };
        let rate = REQUESTS_PER_ROUND as f64 / dt;
        eprintln!(
            "{round:>16} {rate:>12.0} {:>8} {:>8} {:>8} {:>9}",
            service.cache_hits() - h0,
            service.cache_misses() - m0,
            service.cache_shared() - s0,
            service.computations() - c0
        );
    }
    eprintln!();

    // Before/after table: plain keep-alive (request-response round trips)
    // vs pipelined (batch written up front) on the same hot request, best
    // of 3 rounds each to shave scheduler noise. Recorded in
    // BENCH_service.json so the numbers live in the repo, not a scrollback.
    let best = |f: &dyn Fn() -> f64| (0..3).map(|_| f()).fold(f64::INFINITY, f64::min);
    let ka_dt = best(&|| fire_round(&addr, true, |_| 31));
    let pipe_dt = best(&|| fire_round_pipelined(&addr, 31));
    let (ka_rps, pipe_rps) = (
        REQUESTS_PER_ROUND as f64 / ka_dt,
        REQUESTS_PER_ROUND as f64 / pipe_dt,
    );

    // Slow-loris: 64 idle connections parked while the hot keep-alive
    // round runs. Under the reactor runtime they are invisible to the
    // worker pool; under the old one-worker-per-connection runtime this
    // round collapsed to the idle-timeout rate.
    let idles: Vec<_> = (0..64)
        .map(|_| std::net::TcpStream::connect(&addr).expect("idle connect"))
        .collect();
    while service.open_connections() < 64 {
        std::thread::sleep(Duration::from_millis(2));
    }
    let loris_dt = best(&|| fire_round(&addr, true, |_| 31));
    let loris_rps = REQUESTS_PER_ROUND as f64 / loris_dt;
    drop(idles);

    eprintln!("keep-alive vs pipelined (hot cache path, best of 3 rounds):");
    eprintln!("{:>24} {:>12}", "scenario", "req/s");
    eprintln!("{:>24} {ka_rps:>12.0}", "keep-alive");
    eprintln!(
        "{:>24} {pipe_rps:>12.0}  ({:.2}x)",
        "pipelined",
        pipe_rps / ka_rps
    );
    eprintln!(
        "{:>24} {loris_rps:>12.0}  ({:.2}x of quiet)",
        "keep-alive+64 idle",
        loris_rps / ka_rps
    );
    eprintln!();

    // ISSUE satellite `distinct_cold_targets`: 8 clients, pairwise-disjoint
    // target sets, one cold k-path request each per barrier-synced wave.
    // Batched server (gather window) vs unbatched (window 0), fresh server
    // per arm so caches and counters are clean. Batching must at least
    // double throughput: one shared walk stream scores all 8 target sets
    // instead of 8 independent streams drawing 8x the walks.
    let sets: Vec<String> = (0..CLIENT_THREADS)
        .map(|i| format!("[{},{},{}]", 3 * i, 3 * i + 1, 3 * i + 2))
        .collect();
    let waves = 6;
    let (b_handle, b_addr) = start_server_with_window(CLIENT_THREADS, Duration::from_millis(5));
    let batched_dt = fire_distinct_target_waves(&b_addr, &sets, waves, 7_000_000);
    let batch_passes = b_handle.service().sample_passes();
    let batch_members = b_handle.service().batched();
    b_handle.shutdown_and_join();
    let (u_handle, u_addr) = start_server_with_window(CLIENT_THREADS, Duration::ZERO);
    let unbatched_dt = fire_distinct_target_waves(&u_addr, &sets, waves, 7_000_000);
    u_handle.shutdown_and_join();
    let total = (CLIENT_THREADS * waves) as f64;
    let (batched_rps, unbatched_rps) = (total / batched_dt, total / unbatched_dt);
    let batch_speedup = batched_rps / unbatched_rps;
    eprintln!(
        "distinct_cold_targets ({CLIENT_THREADS} disjoint target sets, kpath, {waves} cold waves):"
    );
    eprintln!("{:>24} {:>12}", "scenario", "req/s");
    eprintln!("{:>24} {unbatched_rps:>12.1}", "unbatched (window 0)");
    eprintln!(
        "{:>24} {batched_rps:>12.1}  ({batch_speedup:.2}x, {batch_passes} passes / {} batched)",
        "batched (window 5ms)", batch_members
    );
    eprintln!();

    // ISSUE satellite `sharded_rank`: router + 2 shards serving the same
    // graph split, against the standalone server above. Cold seeds on both
    // sides so every request actually samples; the router's extra cost is
    // wire round trips per sampling round plus the partial-accumulator
    // merges, which its pool telemetry times.
    let shard_servers: Vec<_> = (0..2)
        .map(|_| {
            let cfg = ServiceConfig {
                workers: 2,
                cache_capacity: 64,
                role: Role::Shard,
                ..ServiceConfig::default()
            };
            serve_with("127.0.0.1:0", Arc::new(Service::new(cfg))).expect("bind shard")
        })
        .collect();
    let router_cfg = ServiceConfig {
        workers: 2,
        cache_capacity: 64,
        role: Role::Router,
        shards: shard_servers.iter().map(|s| s.addr().to_string()).collect(),
        ..ServiceConfig::default()
    };
    let router =
        serve_with("127.0.0.1:0", Arc::new(Service::new(router_cfg))).expect("bind router");
    let r_addr = router.addr().to_string();
    let mut rc = Client::new(r_addr.as_str());
    // The generator rebuilds the exact graph the standalone server holds.
    let loaded = rc
        .request(
            "POST",
            "/graphs",
            Some(r#"{"name":"bench","network":"flickr","size":"tiny","seed":1,"split":true}"#),
        )
        .expect("split load");
    assert_eq!(loaded.status, 200, "{}", loaded.body);
    let base = round_seed.fetch_add(2 * REQUESTS_PER_ROUND as u64, Ordering::Relaxed);
    let sharded_dt = fire_round(&r_addr, true, |i| base + i as u64);
    let solo_dt = fire_round(&addr, true, |i| base + REQUESTS_PER_ROUND as u64 + i as u64);
    let (sharded_rps, solo_rps) = (
        REQUESTS_PER_ROUND as f64 / sharded_dt,
        REQUESTS_PER_ROUND as f64 / solo_dt,
    );
    let health = rc.request("GET", "/healthz", None).expect("healthz");
    let hj = saphyra_service::json::Json::parse(&health.body).expect("healthz json");
    let merge_rounds = hj.get("sharded_rounds").unwrap().as_u64().unwrap();
    let merge_nanos = hj.get("sharded_merge_nanos").unwrap().as_u64().unwrap();
    assert!(merge_rounds > 0, "router never fanned a round out");
    let merge_us_per_round = merge_nanos as f64 / merge_rounds as f64 / 1e3;
    drop(rc);
    router.shutdown_and_join();
    for s in shard_servers {
        s.shutdown_and_join();
    }
    eprintln!("sharded_rank (cold bc round, router + 2 shards vs standalone):");
    eprintln!("{:>24} {:>12}", "scenario", "req/s");
    eprintln!("{:>24} {solo_rps:>12.1}", "standalone");
    eprintln!(
        "{:>24} {sharded_rps:>12.1}  ({:.2}x, {merge_rounds} rounds, {merge_us_per_round:.1} us/round merge)",
        "router-proxied", sharded_rps / solo_rps
    );
    eprintln!();

    let json = format!(
        "{{\"clients\":{CLIENT_THREADS},\"requests_per_round\":{REQUESTS_PER_ROUND},\
         \"keepalive_rps\":{ka_rps:.0},\"pipelined_rps\":{pipe_rps:.0},\
         \"pipelined_speedup\":{:.3},\"slowloris_idle_conns\":64,\
         \"slowloris_rps\":{loris_rps:.0},\"slowloris_ratio\":{:.3},\
         \"distinct_cold_targets\":{{\"waves\":{waves},\
         \"unbatched_rps\":{unbatched_rps:.1},\"batched_rps\":{batched_rps:.1},\
         \"batch_speedup\":{batch_speedup:.3},\"sample_passes\":{batch_passes},\
         \"batched_members\":{batch_members}}},\
         \"sharded_rank\":{{\"shards\":2,\"standalone_rps\":{solo_rps:.1},\
         \"router_rps\":{sharded_rps:.1},\"router_ratio\":{:.3},\
         \"sharded_rounds\":{merge_rounds},\
         \"merge_us_per_round\":{merge_us_per_round:.1}}}}}\n",
        pipe_rps / ka_rps,
        loris_rps / ka_rps,
        sharded_rps / solo_rps
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json");
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("warning: cannot write {}: {e}", out.display());
    }

    // The acceptance bar: pipelining must not lose to plain keep-alive,
    // and parked idle connections must not collapse active throughput.
    assert!(
        pipe_rps >= ka_rps * 0.95,
        "pipelined hot throughput regressed: {pipe_rps:.0} vs keep-alive {ka_rps:.0} req/s"
    );
    assert!(
        loris_rps >= ka_rps * 0.5,
        "64 idle connections halved hot throughput: {loris_rps:.0} vs {ka_rps:.0} req/s"
    );
    assert!(
        batch_speedup >= 2.0,
        "cross-request batching under 2x on distinct cold targets: \
         batched {batched_rps:.1} vs unbatched {unbatched_rps:.1} req/s ({batch_speedup:.2}x)"
    );

    handle.shutdown_and_join();
}

/// Cold-start comparison: what a `serve` restart costs with and without a
/// registry snapshot. "decompose" is the pre-persistence boot path (parse
/// the edge list, run the full decomposition); "snapshot_load" is the
/// `--state-dir` path (read + checksum + validate + decode the snapshot);
/// "mmap" is the zero-copy path (map the file, CRC the graph section
/// once, serve the CSR straight off the mapping). All end in a
/// ready-to-rank `GraphEntry`. The decode-vs-mmap delta and the
/// succinct-offset compression ratio are spliced into
/// `BENCH_service.json` as the `cold_start` object.
fn bench_cold_start(c: &mut Criterion) {
    // Full size on purpose: at tiny sizes parsing/validation noise hides
    // the decomposition cost this snapshot exists to amortize (measured
    // here: ~4x at flickr full, ~5.5x at orkut full, and growing with
    // graph size — decomposition BFSes scale worse than a linear read).
    let graph =
        saphyra_gen::datasets::SimNetwork::Flickr.build(saphyra_gen::datasets::SizeClass::Full, 1);
    let dir = std::env::temp_dir().join(format!("saphyra_bench_cold_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let edge_path = dir.join("bench.txt");
    saphyra_graph::io::save_edge_list(&graph, &edge_path).expect("write edge list");
    let dec = saphyra::bc::BcDecomposition::compute(&graph);
    let snap_path = persist::snapshot_path(&dir, "bench");
    persist::save_snapshot(&snap_path, "bench", &graph, &dec, 0).expect("write snapshot");

    let decompose = || {
        let g = saphyra_graph::io::load_edge_list(&edge_path).expect("load");
        GraphEntry::build("bench", g)
    };
    let snapshot_load = || {
        let snap = persist::load_snapshot(&snap_path).expect("snapshot");
        GraphEntry::from_parts(snap.name, snap.graph, snap.dec.expect("intact"))
    };
    let snapshot_mmap = || {
        let snap = persist::load_snapshot_mapped(&snap_path).expect("snapshot");
        GraphEntry::from_parts(snap.name, snap.graph, snap.dec.expect("intact"))
    };
    c.bench_function("cold_start/decompose_from_edge_list", |b| b.iter(decompose));
    c.bench_function("cold_start/snapshot_load", |b| b.iter(snapshot_load));
    c.bench_function("cold_start/mmap", |b| b.iter(snapshot_mmap));

    // The succinct memory tier's compression bar: Elias–Fano offsets must
    // cost at most 12.5% of the plain `Vec<usize>` offsets they replace
    // (the vs-`u32` ratio — half the denominator — is reported alongside).
    let snap = persist::load_snapshot_mapped(&snap_path).expect("snapshot");
    let mapped_boot = snap.mapped;
    let fp = snap.graph.footprint();
    assert!(fp.succinct, "snapshot boot produced plain offsets");
    let succinct_ratio = fp.offsets_bytes as f64 / fp.plain_offsets_bytes as f64;
    let ratio_vs_u32 = fp.offsets_bytes as f64 / (fp.plain_offsets_bytes as f64 / 2.0);
    assert!(
        succinct_ratio <= 0.125,
        "succinct offsets {} B exceed 12.5% of plain {} B ({:.1}%)",
        fp.offsets_bytes,
        fp.plain_offsets_bytes,
        succinct_ratio * 100.0
    );
    drop(snap);

    // Explicit summary so the win is one number in the bench output.
    // Best-of-reps (min), not mean: a single page-cache or scheduler
    // hiccup would otherwise swamp the decode-vs-mmap delta.
    let time = |f: &dyn Fn() -> GraphEntry| {
        (0..10)
            .map(|_| {
                let t0 = Instant::now();
                std::hint::black_box(f());
                t0.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let (t_dec, t_snap, t_mmap) = (time(&decompose), time(&snapshot_load), time(&snapshot_mmap));
    let mmap_speedup = t_snap / t_mmap;
    eprintln!(
        "\ncold start ({} nodes, {} edges): decompose {:.2} ms vs snapshot load {:.2} ms ({:.1}x) \
         vs mmap {:.2} ms ({mmap_speedup:.2}x over decode{})",
        graph.num_nodes(),
        graph.num_edges(),
        t_dec * 1e3,
        t_snap * 1e3,
        t_dec / t_snap,
        t_mmap * 1e3,
        if mapped_boot {
            ""
        } else {
            ", mmap unavailable"
        },
    );
    eprintln!(
        "succinct offsets: {} B vs plain usize {} B ({:.1}%, bar 12.5%; vs u32 {:.1}%)\n",
        fp.offsets_bytes,
        fp.plain_offsets_bytes,
        succinct_ratio * 100.0,
        ratio_vs_u32 * 100.0
    );
    if mapped_boot {
        // The zero-copy path skips the decode's full-file read and the
        // CSR heap copies; it must not lose to decode, noise aside.
        assert!(
            t_mmap <= t_snap * 1.05,
            "mmap boot slower than decode boot: {:.2} ms vs {:.2} ms",
            t_mmap * 1e3,
            t_snap * 1e3
        );
    }

    // Splice the cold_start object into BENCH_service.json. bench_service
    // rewrites the whole file without it (criterion runs that target
    // first), so append here — replacing any cold_start a previous
    // standalone run of this target left behind.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_service.json");
    match std::fs::read_to_string(&out) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let base = match trimmed.find(",\"cold_start\"") {
                Some(i) => &trimmed[..i],
                None => trimmed.strip_suffix('}').unwrap_or(trimmed),
            };
            let json = format!(
                "{base},\"cold_start\":{{\"nodes\":{},\"edges\":{},\
                 \"decompose_ms\":{:.2},\"decode_ms\":{:.2},\"mmap_ms\":{:.2},\
                 \"mmap_speedup\":{mmap_speedup:.2},\"mapped\":{mapped_boot},\
                 \"succinct_offsets_bytes\":{},\"plain_offsets_bytes\":{},\
                 \"succinct_ratio\":{succinct_ratio:.4}}}}}\n",
                graph.num_nodes(),
                graph.num_edges(),
                t_dec * 1e3,
                t_snap * 1e3,
                t_mmap * 1e3,
                fp.offsets_bytes,
                fp.plain_offsets_bytes,
            );
            if let Err(e) = std::fs::write(&out, json) {
                eprintln!("warning: cannot write {}: {e}", out.display());
            }
        }
        Err(e) => eprintln!("warning: cannot read {}: {e}", out.display()),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_service, bench_cold_start
}
criterion_main!(benches);
