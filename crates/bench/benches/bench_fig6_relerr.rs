//! Fig. 6 bench: the relative-error / zero-classification pipeline — one
//! estimator run plus histogram construction.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra_bench::{random_subset, run_algo, Algo};
use saphyra_gen::datasets::{SimNetwork, SizeClass};
use saphyra_graph::brandes::betweenness_exact;
use saphyra_stats::relative_errors;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300))
}

fn bench_fig6(c: &mut Criterion) {
    let g = SimNetwork::LiveJournal.build(SizeClass::Tiny, 1);
    let truth = betweenness_exact(&g);
    let mut rng = StdRng::seed_from_u64(3);
    let subset = random_subset(&g, 100.min(g.num_nodes()), &mut rng);
    let truth_sub: Vec<f64> = subset.iter().map(|&v| truth[v as usize]).collect();
    for algo in [Algo::Kadabra, Algo::Saphyra] {
        c.bench_function(&format!("fig6_relerr_pipeline/{}", algo.name()), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let out = run_algo(algo, &g, &subset, 0.05, 0.1, seed);
                let rep = relative_errors(&out.subset_bc, &truth_sub, 150.0, 25);
                std::hint::black_box(rep.false_zero_frac)
            })
        });
    }
    c.bench_function("fig6_histogram_only", |b| {
        let est = run_algo(Algo::Saphyra, &g, &subset, 0.05, 0.1, 1).subset_bc;
        b.iter(|| std::hint::black_box(relative_errors(&est, &truth_sub, 150.0, 25).mean_abs_pct))
    });
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_fig6
}
criterion_main!(benches);
