//! Parallel batch-sampling scaling: samples/sec of the `Gen_bc` estimator
//! as the worker count sweeps 1 → 2 → 4 → 8 on an R-MAT (LiveJournal-like)
//! graph.
//!
//! Prints an explicit samples/sec + speedup table (stderr) in addition to
//! the per-thread-count criterion timings, so the scaling claim is a
//! number in the bench output, not an assertion in a comment. Results are
//! bit-identical across the sweep (counter-based chunk RNG streams); only
//! wall-clock changes. On a single-core host the sweep degenerates to
//! ~1.0× throughout — the speedup column measures the hardware as much as
//! the engine.
//!
//! `RAYON_NUM_THREADS` is honoured for everything *outside* the explicit
//! pools built here; the sweep itself uses `ThreadPool::install` so one
//! run covers all four configurations.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::{build_a_index, BcApproxProblem, Outreach};
use saphyra::framework::{estimate_risks, AdaptiveConfig};
use saphyra_gen::datasets::{SimNetwork, SizeClass};
use saphyra_graph::{Bicomps, BlockCutTree, Graph};

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

struct Setup {
    g: Graph,
    bic: Bicomps,
    outreach: Outreach,
    targets: Vec<u32>,
}

fn setup() -> Setup {
    // R-MAT social-graph regime (the LiveJournal stand-in).
    let g = SimNetwork::LiveJournal.build(SizeClass::Tiny, 1);
    let bic = Bicomps::compute(&g);
    let tree = BlockCutTree::compute(&bic);
    let outreach = Outreach::compute(&bic, &tree);
    let targets: Vec<u32> = (0..100u32).collect();
    Setup {
        g,
        bic,
        outreach,
        targets,
    }
}

fn bench_scaling(c: &mut Criterion) {
    let s = setup();
    let a_index = build_a_index(s.g.num_nodes(), &s.targets);
    let prob = BcApproxProblem::new(&s.g, &s.bic, &s.outreach, &s.targets, &a_index, 3);
    // Fixed budget: every run draws exactly nmax samples, so time/run is
    // directly samples/sec.
    let cfg = AdaptiveConfig::new(0.02, 0.1).with_fixed_budget();

    // Criterion timings per thread count.
    for threads in THREAD_SWEEP {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        c.bench_function(&format!("gen_bc_fixed_budget/threads={threads}"), |b| {
            b.iter(|| {
                pool.install(|| {
                    let mut rng = StdRng::seed_from_u64(7);
                    estimate_risks(&prob, &cfg, &mut rng)
                })
            })
        });
    }

    // Explicit samples/sec + speedup table.
    let mut baseline = 0.0f64;
    eprintln!("\nparallel scaling (RMAT tiny, fixed budget):");
    eprintln!(
        "{:>8} {:>14} {:>14} {:>9}",
        "threads", "samples", "samples/s", "speedup"
    );
    for threads in THREAD_SWEEP {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        // Warm + best-of-3 to shed scheduler noise.
        let mut best = f64::INFINITY;
        let mut samples = 0usize;
        for _ in 0..3 {
            let t0 = Instant::now();
            let out = pool.install(|| {
                let mut rng = StdRng::seed_from_u64(7);
                estimate_risks(&prob, &cfg, &mut rng)
            });
            let dt = t0.elapsed().as_secs_f64();
            samples = out.samples_used;
            if dt < best {
                best = dt;
            }
        }
        let rate = samples as f64 / best;
        if threads == 1 {
            baseline = rate;
        }
        eprintln!(
            "{threads:>8} {samples:>14} {rate:>14.0} {:>8.2}x",
            rate / baseline
        );
    }
    eprintln!();
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_scaling
}
criterion_main!(benches);
