//! Table I bench: cost of computing the personalized VC-dimension bounds
//! (diameter, bicomponent and subset bounds) per network.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::vc_bounds;
use saphyra_bench::random_subset;
use saphyra_gen::datasets::{SimNetwork, SizeClass};
use saphyra_graph::Bicomps;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300))
}

fn bench_table1(c: &mut Criterion) {
    for net in SimNetwork::all() {
        let g = net.build(SizeClass::Tiny, 1);
        let bic = Bicomps::compute(&g);
        let mut rng = StdRng::seed_from_u64(3);
        let subset = random_subset(&g, 100.min(g.num_nodes()), &mut rng);
        c.bench_function(&format!("table1_vc_bounds/{}", net.name()), |b| {
            b.iter(|| std::hint::black_box(vc_bounds(&g, &bic, &subset).vc_subset))
        });
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_table1
}
criterion_main!(benches);
