//! Fig. 6: signed relative-error histograms with true-zero / false-zero
//! classification at ε = 0.05. The paper's diagnosis: >95% of baseline
//! estimates are exact zeros — true zeros are harmless, false zeros destroy
//! the ranking; SaPHyRa has no false zeros (Lemma 19).

use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra_bench::report::fmt_f;
use saphyra_bench::sweep::DELTA;
use saphyra_bench::{
    build_networks, ground_truth, random_subset, run_algo, scale_from_env, seed_from_env,
    trials_from_env, Algo, Table,
};
use saphyra_stats::relative_errors;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let trials = trials_from_env(3);
    let eps = 0.05;

    let mut table = Table::new(
        format!("Fig. 6 — signed relative error at eps={eps} (union of {trials} subsets of 100)"),
        &[
            "network",
            "algorithm",
            "true-zero %",
            "false-zero %",
            "mean |err| %",
            "histogram [-100%..150%] (10 buckets)",
        ],
    );
    for net in build_networks(scale, seed) {
        let truth = ground_truth(net.name, &net.graph, scale, seed);
        // Union of the trial subsets = the evaluated node population.
        let mut subset_rng = StdRng::seed_from_u64(seed ^ 0x66);
        let mut pool: Vec<u32> = (0..trials)
            .flat_map(|_| {
                random_subset(&net.graph, 100.min(net.graph.num_nodes()), &mut subset_rng)
            })
            .collect();
        pool.sort_unstable();
        pool.dedup();
        let truth_pool: Vec<f64> = pool.iter().map(|&v| truth[v as usize]).collect();

        for algo in Algo::all() {
            let est = if algo.subset_aware() {
                run_algo(algo, &net.graph, &pool, eps, DELTA, seed).subset_bc
            } else {
                let all: Vec<u32> = net.graph.nodes().collect();
                let out = run_algo(algo, &net.graph, &all, eps, DELTA, seed);
                pool.iter().map(|&v| out.subset_bc[v as usize]).collect()
            };
            let rep = relative_errors(&est, &truth_pool, 150.0, 10);
            let hist: Vec<String> = rep
                .histogram
                .iter()
                .map(|&h| format!("{:.0}", h * 100.0))
                .collect();
            table.row(vec![
                net.name.to_string(),
                algo.name().to_string(),
                fmt_f(rep.true_zero_frac * 100.0, 1),
                fmt_f(rep.false_zero_frac * 100.0, 1),
                fmt_f(rep.mean_abs_pct, 1),
                hist.join(" "),
            ]);
        }
    }
    table.print();
    table
        .save_tsv("fig6_relerr.tsv")
        .expect("write results/fig6_relerr.tsv");
    println!("\nexpected shape (paper): ABRA/KADABRA show large false-zero fractions (37-96%),");
    println!(
        "growing with network density (Flickr < LiveJournal < Orkut); SaPHyRa variants show 0%"
    );
    println!("false zeros (Lemma 19), and the more true zeros a network has, the better the");
    println!("baselines' rank correlation looks in Fig. 4.");
}
