//! Fig. 4: Spearman rank correlation to the exact ground truth at each ε,
//! with the 95% confidence band over random target subsets.

use saphyra_bench::report::{fmt_ci, fmt_f};
use saphyra_bench::sweep::{run_eps_sweep, EPS_GRID};
use saphyra_bench::{scale_from_env, seed_from_env, trials_from_env, Table};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let trials = trials_from_env(3);
    let records = run_eps_sweep(scale, seed, trials, 100, &EPS_GRID);

    let mut table = Table::new(
        format!("Fig. 4 — Spearman rank correlation ({scale:?} scale, {trials} subsets of 100)"),
        &[
            "network",
            "eps",
            "algorithm",
            "rho (mean±95ci)",
            "rho min",
            "rho max",
        ],
    );
    for r in &records {
        table.row(vec![
            r.network.to_string(),
            fmt_f(r.eps, 2),
            r.algo.name().to_string(),
            fmt_ci(&r.rho, 3),
            fmt_f(r.rho.min, 3),
            fmt_f(r.rho.max, 3),
        ]);
    }
    table.print();
    table
        .save_tsv("fig4_rank.tsv")
        .expect("write results/fig4_rank.tsv");
    println!("\nexpected shape (paper): SaPHyRa/SaPHyRa-full dominate at every eps (e.g. 0.84 vs");
    println!("0.13/0.09 on LiveJournal at eps=0.05); baseline rho varies wildly across subsets");
    println!("(wide min-max band) while SaPHyRa stays tight.");
}
