//! Table I: VC-dimension bound comparison — Riondato et al.'s diameter
//! bound vs SaPHyRa_bc's bicomponent bound (full network), subset bound
//! `BS(A)` (random subsets) and the ℓ-hop bound.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::{vc_bounds, vc_lhop};
use saphyra_bench::{build_networks, random_subset, scale_from_env, seed_from_env, Table};
use saphyra_graph::bfs::BfsWorkspace;
use saphyra_graph::Bicomps;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let mut table = Table::new(
        format!("Table I — VC-dimension bounds ({scale:?} scale)"),
        &[
            "network",
            "VD(V)<=",
            "BD(V)<=",
            "BS(A)<= (|A|=100)",
            "VC riondato",
            "VC saphyra-full",
            "VC saphyra-subset",
            "VC 2-hop",
        ],
    );
    for net in build_networks(scale, seed) {
        let g = &net.graph;
        let bic = Bicomps::compute(g);
        let mut rng = StdRng::seed_from_u64(seed);
        let subset = random_subset(g, 100.min(g.num_nodes()), &mut rng);
        let r = vc_bounds(g, &bic, &subset);

        // The ℓ-hop column: targets within 2 hops of one node.
        let mut ws = BfsWorkspace::new(g.num_nodes());
        ws.run(g, subset[0]);
        let lhop_vc = vc_lhop(2);

        table.row(vec![
            net.name.to_string(),
            r.vd_upper.to_string(),
            r.bd_upper.to_string(),
            r.bs_upper.to_string(),
            r.vc_riondato.to_string(),
            r.vc_full.to_string(),
            r.vc_subset.to_string(),
            lhop_vc.to_string(),
        ]);
    }
    table.print();
    table
        .save_tsv("table1.tsv")
        .expect("write results/table1.tsv");
    println!(
        "\nexpected shape (paper Table I): VC(subset) <= VC(full, bicomponent) <= VC(Riondato,"
    );
    println!("diameter). The bicomponent bound wins on pendant-heavy networks (flickr-sim);");
    println!("the subset bound wins for small or localized subsets — the 2-hop column shows the");
    println!("l-hop specialization log2(2l+1)+1, independent of the network diameter.");
}
