//! Ablation study (DESIGN.md §5): which of SaPHyRa_bc's three ingredients
//! — the 2-hop exact subspace, adaptive Bernstein stopping, bi-component
//! sampling — buys what, measured against the exact ground truth.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::{BcIndex, SaphyraBcConfig};
use saphyra_bench::report::fmt_f;
use saphyra_bench::{
    build_networks, ground_truth, random_subset, run_algo, scale_from_env, seed_from_env,
    trials_from_env, Algo, Table,
};
use saphyra_stats::{relative_errors, spearman_vs_truth, Summary};
use std::time::Instant;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let trials = trials_from_env(3);
    let (eps, delta) = (0.05, 0.01);

    let mut table = Table::new(
        format!("Ablation — SaPHyRa_bc ingredients at eps={eps} ({scale:?} scale)"),
        &[
            "network",
            "variant",
            "time(s)",
            "samples",
            "rho",
            "false-zero %",
        ],
    );

    for net in build_networks(scale, seed) {
        let g = &net.graph;
        let truth = ground_truth(net.name, g, scale, seed);
        let mut subset_rng = StdRng::seed_from_u64(seed ^ 0x77);
        let subsets: Vec<Vec<u32>> = (0..trials)
            .map(|_| random_subset(g, 100.min(g.num_nodes()), &mut subset_rng))
            .collect();

        let variants: Vec<(&str, SaphyraBcConfig)> = vec![
            ("full pipeline", SaphyraBcConfig::new(eps, delta)),
            (
                "no exact subspace",
                SaphyraBcConfig::new(eps, delta).without_exact_subspace(),
            ),
            (
                "fixed VC budget",
                SaphyraBcConfig::new(eps, delta).with_fixed_budget(),
            ),
        ];
        for (name, cfg) in &variants {
            let mut times = Vec::new();
            let mut rhos = Vec::new();
            let mut fz = Vec::new();
            let mut samples = 0usize;
            for (i, subset) in subsets.iter().enumerate() {
                let mut rng = StdRng::seed_from_u64(seed + i as u64);
                let t0 = Instant::now();
                let index = BcIndex::new(g);
                let est = index.rank_subset(subset, cfg, &mut rng);
                times.push(t0.elapsed().as_secs_f64());
                let truth_sub: Vec<f64> = subset.iter().map(|&v| truth[v as usize]).collect();
                rhos.push(spearman_vs_truth(&est.bc, &truth_sub));
                let rep = relative_errors(&est.bc, &truth_sub, 150.0, 10);
                fz.push(rep.false_zero_frac * 100.0);
                samples = est.stats.samples;
            }
            table.row(vec![
                net.name.to_string(),
                name.to_string(),
                fmt_f(Summary::of(&times).mean, 3),
                samples.to_string(),
                fmt_f(Summary::of(&rhos).mean, 3),
                fmt_f(Summary::of(&fz).mean, 1),
            ]);
        }
        // The "no bi-components at all" row is KADABRA: whole-graph path
        // sampling, no exact subspace, no personalized space.
        let all: Vec<u32> = g.nodes().collect();
        let out = run_algo(Algo::Kadabra, g, &all, eps, delta, seed);
        let mut rhos = Vec::new();
        let mut fz = Vec::new();
        for subset in &subsets {
            let est: Vec<f64> = subset.iter().map(|&v| out.subset_bc[v as usize]).collect();
            let truth_sub: Vec<f64> = subset.iter().map(|&v| truth[v as usize]).collect();
            rhos.push(spearman_vs_truth(&est, &truth_sub));
            fz.push(relative_errors(&est, &truth_sub, 150.0, 10).false_zero_frac * 100.0);
        }
        table.row(vec![
            net.name.to_string(),
            "no bicomponents (KADABRA)".to_string(),
            fmt_f(out.seconds, 3),
            out.samples.to_string(),
            fmt_f(Summary::of(&rhos).mean, 3),
            fmt_f(Summary::of(&fz).mean, 1),
        ]);
    }
    table.print();
    table
        .save_tsv("ablation.tsv")
        .expect("write results/ablation.tsv");
    println!("\nexpected shape: removing the exact subspace raises the false-zero rate and drops");
    println!("rho on dense networks; the fixed budget inflates samples/time at equal accuracy;");
    println!("dropping bicomponents entirely (KADABRA) loses on both quality and time.");
}
