//! Fig. 7 + Table III: the USA-road case study — four geographic areas
//! (NYC, BAY, CO, FL analogues) as target subsets; running time, rank
//! quality and rank deviation per area.

use saphyra_bench::report::fmt_f;
use saphyra_bench::sweep::DELTA;
use saphyra_bench::{ground_truth, run_algo, scale_from_env, seed_from_env, Algo, Table};
use saphyra_gen::datasets::road_sim;
use saphyra_stats::{rank_deviation, spearman_vs_truth};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let eps = 0.05;
    let road = road_sim(scale, seed);
    let g = &road.graph;
    let truth = ground_truth("usa-road-sim", g, scale, seed);
    let areas = road.case_study_areas();

    let mut t3 = Table::new(
        format!("Table III — subset summary ({scale:?} scale)"),
        &["area", "nodes", "% of network"],
    );
    for a in &areas {
        let nodes = a.nodes(&road);
        t3.row(vec![
            a.name.to_string(),
            nodes.len().to_string(),
            fmt_f(100.0 * nodes.len() as f64 / g.num_nodes() as f64, 2),
        ]);
    }
    t3.print();
    t3.save_tsv("table3.tsv").expect("write results/table3.tsv");

    let mut table = Table::new(
        format!("Fig. 7 — USA-road case study (eps={eps})"),
        &["area", "algorithm", "time(s)", "rho", "rank-dev %"],
    );
    // Whole-network estimators once (ABRA is reported as DNF at the paper's
    // scale; we still run it at simulation scale for completeness).
    let all: Vec<u32> = g.nodes().collect();
    let whole: Vec<(Algo, saphyra_bench::RunOutput)> =
        [Algo::Abra, Algo::Kadabra, Algo::SaphyraFull]
            .into_iter()
            .map(|algo| {
                let out = run_algo(algo, g, &all, eps, DELTA, seed);
                (algo, out)
            })
            .collect();
    for a in &areas {
        let targets = a.nodes(&road);
        let truth_sub: Vec<f64> = targets.iter().map(|&v| truth[v as usize]).collect();
        for (algo, out) in &whole {
            let est: Vec<f64> = targets.iter().map(|&v| out.subset_bc[v as usize]).collect();
            table.row(vec![
                a.name.to_string(),
                algo.name().to_string(),
                fmt_f(out.seconds, 3),
                fmt_f(spearman_vs_truth(&est, &truth_sub), 3),
                fmt_f(100.0 * rank_deviation(&est, &truth_sub), 1),
            ]);
        }
        let out = run_algo(Algo::Saphyra, g, &targets, eps, DELTA, seed);
        table.row(vec![
            a.name.to_string(),
            Algo::Saphyra.name().to_string(),
            fmt_f(out.seconds, 3),
            fmt_f(spearman_vs_truth(&out.subset_bc, &truth_sub), 3),
            fmt_f(100.0 * rank_deviation(&out.subset_bc, &truth_sub), 1),
        ]);
    }
    table.print();
    table
        .save_tsv("fig7_road.tsv")
        .expect("write results/fig7_road.tsv");
    println!("\nexpected shape (paper): SaPHyRa beats KADABRA on both time and rank quality in");
    println!("every area; SaPHyRa's time shrinks with the area (105s FL -> 59s NYC at paper");
    println!("scale); rank deviation: KADABRA up to 39%, SaPHyRa-full/SaPHyRa 11-12%.");
}
