//! Combined ε-sweep: one run of the Fig. 3 / Fig. 4 experiment writing both
//! tables (the two figures share all computation; use this at `full` scale).

use saphyra_bench::report::{fmt_ci, fmt_f};
use saphyra_bench::sweep::{run_eps_sweep, EPS_GRID};
use saphyra_bench::{scale_from_env, seed_from_env, trials_from_env, Table};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let trials = trials_from_env(3);
    let records = run_eps_sweep(scale, seed, trials, 100, &EPS_GRID);

    let mut fig3 = Table::new(
        format!("Fig. 3 — running time in seconds ({scale:?} scale, {trials} subsets)"),
        &["network", "eps", "algorithm", "time(s)", "samples"],
    );
    let mut fig4 = Table::new(
        format!("Fig. 4 — Spearman rank correlation ({scale:?} scale, {trials} subsets of 100)"),
        &[
            "network",
            "eps",
            "algorithm",
            "rho (mean±95ci)",
            "rho min",
            "rho max",
        ],
    );
    for r in &records {
        fig3.row(vec![
            r.network.to_string(),
            fmt_f(r.eps, 2),
            r.algo.name().to_string(),
            fmt_ci(&r.time, 3),
            r.samples.to_string(),
        ]);
        fig4.row(vec![
            r.network.to_string(),
            fmt_f(r.eps, 2),
            r.algo.name().to_string(),
            fmt_ci(&r.rho, 3),
            fmt_f(r.rho.min, 3),
            fmt_f(r.rho.max, 3),
        ]);
    }
    fig3.print();
    fig4.print();
    fig3.save_tsv("fig3_runtime.tsv").expect("write fig3 tsv");
    fig4.save_tsv("fig4_rank.tsv").expect("write fig4 tsv");
}
