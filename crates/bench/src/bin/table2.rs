//! Table II: networks' summary (nodes, edges, diameter) for the simulated
//! stand-ins, plus the decomposition statistics SaPHyRa_bc exploits.

use saphyra::bc::BcIndex;
use saphyra_bench::report::fmt_f;
use saphyra_bench::{build_networks, scale_from_env, seed_from_env, Table};
use saphyra_graph::bfs::BfsWorkspace;
use saphyra_graph::diameter::double_sweep_lower;

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let mut table = Table::new(
        format!("Table II — networks' summary ({scale:?} scale, seed {seed})"),
        &[
            "network",
            "nodes",
            "edges",
            "diam>=",
            "avg-deg",
            "bicomps",
            "largest-bicomp",
            "cutpoints",
            "gamma",
        ],
    );
    for net in build_networks(scale, seed) {
        let g = &net.graph;
        let mut ws = BfsWorkspace::new(g.num_nodes());
        let diam = double_sweep_lower(g, 0, &mut ws);
        let index = BcIndex::new(g);
        let largest = (0..index.bic.num_bicomps as u32)
            .map(|b| index.bic.size_of(b))
            .max()
            .unwrap_or(0);
        let cutpoints = index.bic.is_cutpoint.iter().filter(|&&c| c).count();
        table.row(vec![
            net.name.to_string(),
            g.num_nodes().to_string(),
            g.num_edges().to_string(),
            diam.to_string(),
            fmt_f(2.0 * g.num_edges() as f64 / g.num_nodes() as f64, 2),
            index.bic.num_bicomps.to_string(),
            largest.to_string(),
            cutpoints.to_string(),
            fmt_f(index.gamma, 4),
        ]);
    }
    table.print();
    table
        .save_tsv("table2.tsv")
        .expect("write results/table2.tsv");
    println!(
        "\npaper reference (Table II): Flickr 1.6M/15.5M diam 24; LiveJournal 5.2M/49.2M diam 23;"
    );
    println!("USA-road 23.9M/58.3M diam 1524; Orkut 3.1M/117.2M diam 10.");
    println!("expected shape: road-sim diameter orders of magnitude above the social networks.");
}
