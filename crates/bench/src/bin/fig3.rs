//! Fig. 3: running time (log-scale in the paper) of ABRA, KADABRA,
//! SaPHyRa_bc-full and SaPHyRa_bc at ε ∈ {0.2, 0.1, 0.05, 0.02, 0.01},
//! δ = 0.01, over subsets of 100 random nodes.

use saphyra_bench::report::{fmt_ci, fmt_f};
use saphyra_bench::sweep::{run_eps_sweep, EPS_GRID};
use saphyra_bench::{scale_from_env, seed_from_env, trials_from_env, Table};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let trials = trials_from_env(3);
    let records = run_eps_sweep(scale, seed, trials, 100, &EPS_GRID);

    let mut table = Table::new(
        format!("Fig. 3 — running time in seconds ({scale:?} scale, {trials} subsets)"),
        &["network", "eps", "algorithm", "time(s)", "samples"],
    );
    for r in &records {
        table.row(vec![
            r.network.to_string(),
            fmt_f(r.eps, 2),
            r.algo.name().to_string(),
            fmt_ci(&r.time, 3),
            r.samples.to_string(),
        ]);
    }
    table.print();
    table
        .save_tsv("fig3_runtime.tsv")
        .expect("write results/fig3_runtime.tsv");

    // Headline ratios, as reported in §V-B.
    println!("\nspeedup of SaPHyRa over the baselines (same network & eps):");
    for r in records.iter().filter(|r| r.algo.name() == "SaPHyRa") {
        let find = |name: &str| {
            records
                .iter()
                .find(|o| o.network == r.network && o.eps == r.eps && o.algo.name() == name)
                .map(|o| o.time.mean)
        };
        let fmt_ratio = |t: Option<f64>| match t {
            Some(t) if r.time.mean > 0.0 => format!("{:.1}x", t / r.time.mean.max(1e-9)),
            _ => "-".to_string(),
        };
        println!(
            "  {:>16} eps={:<5} vs ABRA {:>8}  vs KADABRA {:>8}  vs SaPHyRa-full {:>8}",
            r.network,
            r.eps,
            fmt_ratio(find("ABRA")),
            fmt_ratio(find("KADABRA")),
            fmt_ratio(find("SaPHyRa-full")),
        );
    }
    println!(
        "\nexpected shape (paper): ABRA slowest by 1-2 orders of magnitude (node-pair samples"
    );
    println!(
        "cost a truncated BFS each); SaPHyRa 4-11x faster than SaPHyRa-full and needing fewer"
    );
    println!(
        "samples than KADABRA. Note: our KADABRA reimplementation shares SaPHyRa's bb-BFS and"
    );
    println!("Bernstein machinery, so the paper's 7-235x gap vs the authors' binaries compresses");
    println!("to sample-count ratios at simulation scale (see EXPERIMENTS.md).");
}
