//! Fig. 5: rank correlation vs subset size (10..100) at fixed ε = 0.05.
//! The paper's observation: baseline quality varies ever more wildly as the
//! subset shrinks, while SaPHyRa stays tight.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra_bench::report::{fmt_ci, fmt_f};
use saphyra_bench::sweep::DELTA;
use saphyra_bench::{
    build_networks, ground_truth, random_subset, run_algo, scale_from_env, seed_from_env,
    trials_from_env, Algo, Table,
};
use saphyra_stats::{spearman_vs_truth, Summary};

fn main() {
    let scale = scale_from_env();
    let seed = seed_from_env();
    let trials = trials_from_env(3);
    let eps = 0.05;
    let sizes: Vec<usize> = (1..=10).map(|k| k * 10).collect();

    let mut table = Table::new(
        format!("Fig. 5 — rank correlation vs subset size (eps={eps}, {trials} subsets each)"),
        &[
            "network",
            "size",
            "algorithm",
            "rho (mean±95ci)",
            "rho min",
            "rho max",
        ],
    );
    for net in build_networks(scale, seed) {
        let truth = ground_truth(net.name, &net.graph, scale, seed);
        // Whole-network estimators run once per network.
        let all: Vec<u32> = net.graph.nodes().collect();
        let baseline_runs: Vec<(Algo, Vec<f64>)> = [Algo::Abra, Algo::Kadabra, Algo::SaphyraFull]
            .into_iter()
            .map(|algo| {
                let out = run_algo(algo, &net.graph, &all, eps, DELTA, seed);
                (algo, out.subset_bc)
            })
            .collect();
        let mut subset_rng = StdRng::seed_from_u64(seed ^ 0x55);
        for &size in &sizes {
            let size = size.min(net.graph.num_nodes());
            let subsets: Vec<Vec<u32>> = (0..trials)
                .map(|_| random_subset(&net.graph, size, &mut subset_rng))
                .collect();
            for (algo, est_all) in &baseline_runs {
                let rhos: Vec<f64> = subsets
                    .iter()
                    .map(|subset| {
                        let est: Vec<f64> = subset.iter().map(|&v| est_all[v as usize]).collect();
                        let t: Vec<f64> = subset.iter().map(|&v| truth[v as usize]).collect();
                        spearman_vs_truth(&est, &t)
                    })
                    .collect();
                let s = Summary::of(&rhos);
                table.row(vec![
                    net.name.to_string(),
                    size.to_string(),
                    algo.name().to_string(),
                    fmt_ci(&s, 3),
                    fmt_f(s.min, 3),
                    fmt_f(s.max, 3),
                ]);
            }
            let rhos: Vec<f64> = subsets
                .iter()
                .enumerate()
                .map(|(i, subset)| {
                    let out = run_algo(
                        Algo::Saphyra,
                        &net.graph,
                        subset,
                        eps,
                        DELTA,
                        seed + i as u64,
                    );
                    let t: Vec<f64> = subset.iter().map(|&v| truth[v as usize]).collect();
                    spearman_vs_truth(&out.subset_bc, &t)
                })
                .collect();
            let s = Summary::of(&rhos);
            table.row(vec![
                net.name.to_string(),
                size.to_string(),
                Algo::Saphyra.name().to_string(),
                fmt_ci(&s, 3),
                fmt_f(s.min, 3),
                fmt_f(s.max, 3),
            ]);
        }
    }
    table.print();
    table
        .save_tsv("fig5_subset_size.tsv")
        .expect("write results/fig5_subset_size.tsv");
    println!("\nexpected shape (paper): the baselines' min-max band widens as the subset shrinks;");
    println!("SaPHyRa's band stays narrow at every size.");
}
