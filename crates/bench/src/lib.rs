//! # saphyra-bench
//!
//! The benchmark harness regenerating every table and figure of the SaPHyRa
//! evaluation (§V) on the simulated networks of `saphyra-gen`
//! (see DESIGN.md §4 for the dataset substitutions and §5 for the
//! experiment index).
//!
//! * Binaries (`cargo run --release -p saphyra-bench --bin <name>`):
//!   `table1`, `table2`, `fig3`, `fig4`, `fig5`, `fig6`, `fig7`,
//!   `ablation`. Each prints the paper-style rows and writes a TSV under
//!   `results/`.
//! * Criterion benches (`cargo bench`): reduced-size versions of the same
//!   experiments plus substrate microbenches.
//!
//! Environment knobs: `SAPHYRA_SCALE` = `tiny` | `small` | `full`
//! (default `small`), `SAPHYRA_TRIALS` = subsets per configuration
//! (default 3; the paper uses 1000), `SAPHYRA_SEED`.

pub mod harness;
pub mod report;
pub mod sweep;

pub use harness::{
    build_networks, ground_truth, random_subset, run_algo, scale_from_env, seed_from_env,
    trials_from_env, Algo, Network, RunOutput,
};
pub use report::Table;
