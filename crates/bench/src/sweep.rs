//! The shared ε-sweep behind Figs. 3 and 4 (and the subset-size sweep of
//! Fig. 5): run every algorithm over every network at every ε, collecting
//! wall-clock and rank-quality records.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra_gen::datasets::SizeClass;
use saphyra_stats::{spearman_vs_truth, Summary};

use crate::harness::{build_networks, ground_truth, random_subset, run_algo, Algo};

/// The paper's ε grid (Figs. 3-4).
pub const EPS_GRID: [f64; 5] = [0.2, 0.1, 0.05, 0.02, 0.01];

/// The paper's δ.
pub const DELTA: f64 = 0.01;

/// One (network, ε, algorithm) record aggregated over trial subsets.
#[derive(Debug, Clone)]
pub struct SweepRecord {
    /// Network display name.
    pub network: &'static str,
    /// Error target ε.
    pub eps: f64,
    /// Algorithm.
    pub algo: Algo,
    /// Wall-clock seconds over runs.
    pub time: Summary,
    /// Spearman ρ against the exact ground truth over trial subsets.
    pub rho: Summary,
    /// Samples drawn (first run).
    pub samples: usize,
}

/// Runs the ε sweep. `subset_size` matches the paper's 100;
/// `trials` subsets per configuration.
pub fn run_eps_sweep(
    scale: SizeClass,
    seed: u64,
    trials: usize,
    subset_size: usize,
    eps_grid: &[f64],
) -> Vec<SweepRecord> {
    let networks = build_networks(scale, seed);
    let mut records = Vec::new();
    for net in &networks {
        let truth = ground_truth(net.name, &net.graph, scale, seed);
        let subset_size = subset_size.min(net.graph.num_nodes());
        let mut subset_rng = StdRng::seed_from_u64(seed ^ 0xabcd);
        let subsets: Vec<Vec<u32>> = (0..trials)
            .map(|_| random_subset(&net.graph, subset_size, &mut subset_rng))
            .collect();
        for &eps in eps_grid {
            for algo in Algo::all() {
                let mut times = Vec::new();
                let mut rhos = Vec::new();
                let mut samples = 0usize;
                if algo.subset_aware() {
                    // SaPHyRa runs once per subset.
                    for (i, subset) in subsets.iter().enumerate() {
                        let out = run_algo(algo, &net.graph, subset, eps, DELTA, seed + i as u64);
                        let truth_sub: Vec<f64> =
                            subset.iter().map(|&v| truth[v as usize]).collect();
                        rhos.push(spearman_vs_truth(&out.subset_bc, &truth_sub));
                        times.push(out.seconds);
                        samples = out.samples;
                    }
                } else {
                    // Whole-network estimators: one run, evaluated on every
                    // subset (their estimates do not depend on the subset).
                    let all: Vec<u32> = net.graph.nodes().collect();
                    let out = run_algo(algo, &net.graph, &all, eps, DELTA, seed);
                    times.push(out.seconds);
                    samples = out.samples;
                    for subset in &subsets {
                        let est_sub: Vec<f64> =
                            subset.iter().map(|&v| out.subset_bc[v as usize]).collect();
                        let truth_sub: Vec<f64> =
                            subset.iter().map(|&v| truth[v as usize]).collect();
                        rhos.push(spearman_vs_truth(&est_sub, &truth_sub));
                    }
                }
                records.push(SweepRecord {
                    network: net.name,
                    eps,
                    algo,
                    time: Summary::of(&times),
                    rho: Summary::of(&rhos),
                    samples,
                });
            }
        }
    }
    records
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_produces_full_grid() {
        let records = run_eps_sweep(SizeClass::Tiny, 3, 2, 20, &[0.2, 0.1]);
        // 4 networks × 2 eps × 4 algos.
        assert_eq!(records.len(), 4 * 2 * 4);
        for r in &records {
            assert!(r.time.mean >= 0.0);
            assert!(r.rho.mean >= -1.0 && r.rho.mean <= 1.0 + 1e-9);
            assert!(r.samples > 0);
        }
    }
}
