//! Aligned table printing and TSV export for the figure binaries.

use std::io::Write;
use std::path::Path;

/// A printable results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Prints the table with aligned columns.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.chars().count());
            }
        }
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let _ = writeln!(out, "\n== {} ==", self.title);
        let line = |out: &mut dyn Write, cells: &[String]| {
            let mut s = String::new();
            for (w, c) in widths.iter().zip(cells) {
                s.push_str(&format!("{c:<width$}  ", width = w));
            }
            let _ = writeln!(out, "{}", s.trim_end());
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().map(|w| w + 2).sum();
        let _ = writeln!(out, "{}", "-".repeat(total.saturating_sub(2)));
        for row in &self.rows {
            line(&mut out, row);
        }
    }

    /// Writes the table as TSV under `results/`.
    pub fn save_tsv(&self, file: &str) -> std::io::Result<()> {
        let dir = Path::new("results");
        std::fs::create_dir_all(dir)?;
        let mut f = std::io::BufWriter::new(std::fs::File::create(dir.join(file))?);
        writeln!(f, "# {}", self.title)?;
        writeln!(f, "{}", self.headers.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(())
    }
}

/// Formats a float with `prec` decimals.
pub fn fmt_f(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats a mean with its 95% CI halfwidth.
pub fn fmt_ci(s: &saphyra_stats::Summary, prec: usize) -> String {
    format!("{:.prec$}±{:.prec$}", s.mean, s.ci_hi - s.mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_roundtrip() {
        let mut t = Table::new("demo", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        t.print();
        t.save_tsv("test_demo.tsv").unwrap();
        let text = std::fs::read_to_string("results/test_demo.tsv").unwrap();
        assert!(text.contains("a\tbb"));
        assert!(text.contains("333\t4"));
        std::fs::remove_file("results/test_demo.tsv").ok();
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        let s = saphyra_stats::Summary::of(&[1.0, 2.0]);
        assert!(fmt_ci(&s, 2).starts_with("1.50±"));
    }
}
