//! Experiment plumbing: networks, ground-truth caching, the algorithm
//! dispatcher and subset generation.

use std::io::Write;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saphyra::bc::{BcIndex, SaphyraBcConfig};
use saphyra_baselines::{abra, exact_betweenness, kadabra, AbraConfig, KadabraConfig};
use saphyra_gen::datasets::{SimNetwork, SizeClass};
use saphyra_graph::{Graph, NodeId};

/// A named benchmark network.
pub struct Network {
    /// Display name (paper analogue).
    pub name: &'static str,
    /// The graph.
    pub graph: Graph,
}

/// Reads `SAPHYRA_SCALE` (`tiny` / `small` / `full`), defaulting to small.
pub fn scale_from_env() -> SizeClass {
    match std::env::var("SAPHYRA_SCALE").as_deref() {
        Ok("tiny") => SizeClass::Tiny,
        Ok("full") => SizeClass::Full,
        _ => SizeClass::Small,
    }
}

/// Reads `SAPHYRA_TRIALS` (subsets per configuration).
pub fn trials_from_env(default: usize) -> usize {
    std::env::var("SAPHYRA_TRIALS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Reads `SAPHYRA_SEED`.
pub fn seed_from_env() -> u64 {
    std::env::var("SAPHYRA_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2022)
}

/// Builds the four simulated networks of Table II.
pub fn build_networks(scale: SizeClass, seed: u64) -> Vec<Network> {
    SimNetwork::all()
        .into_iter()
        .map(|net| Network {
            name: net.name(),
            graph: net.build(scale, seed),
        })
        .collect()
}

fn scale_tag(scale: SizeClass) -> &'static str {
    match scale {
        SizeClass::Tiny => "tiny",
        SizeClass::Small => "small",
        SizeClass::Full => "full",
    }
}

/// Exact betweenness with a file cache under `data/gt/` (the simulated
/// stand-in for the paper's precomputed Cray ground truth).
pub fn ground_truth(name: &str, g: &Graph, scale: SizeClass, seed: u64) -> Vec<f64> {
    let dir = std::path::Path::new("data/gt");
    let path = dir.join(format!("{name}-{}-{seed}.tsv", scale_tag(scale)));
    let fingerprint = format!("# n={} m={}", g.num_nodes(), g.num_edges());
    if let Ok(text) = std::fs::read_to_string(&path) {
        // The header fingerprints the graph; a stale cache (e.g. after a
        // generator change) is silently recomputed rather than reused.
        if text.lines().next() == Some(fingerprint.as_str()) {
            let vals: Vec<f64> = text
                .lines()
                .skip(1)
                .filter_map(|l| l.trim().parse().ok())
                .collect();
            if vals.len() == g.num_nodes() {
                return vals;
            }
        }
    }
    let t0 = Instant::now();
    let bc = exact_betweenness(g, 0);
    eprintln!(
        "[gt] computed exact betweenness for {name} ({} nodes) in {:.1}s",
        g.num_nodes(),
        t0.elapsed().as_secs_f64()
    );
    if std::fs::create_dir_all(dir).is_ok() {
        if let Ok(f) = std::fs::File::create(&path) {
            let mut w = std::io::BufWriter::new(f);
            let _ = writeln!(w, "{fingerprint}");
            for x in &bc {
                let _ = writeln!(w, "{x:.17e}");
            }
        }
    }
    bc
}

/// Draws `size` distinct nodes uniformly.
pub fn random_subset(g: &Graph, size: usize, rng: &mut StdRng) -> Vec<NodeId> {
    let n = g.num_nodes();
    assert!(size <= n);
    let mut chosen = std::collections::HashSet::with_capacity(size * 2);
    let mut out = Vec::with_capacity(size);
    while out.len() < size {
        let v = rng.gen_range(0..n as NodeId);
        if chosen.insert(v) {
            out.push(v);
        }
    }
    out.sort_unstable();
    out
}

/// The four algorithms of Figs. 3-7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algo {
    /// ABRA (node-pair sampling, Rademacher stopping).
    Abra,
    /// KADABRA (path sampling, bidirectional BFS).
    Kadabra,
    /// SaPHyRa_bc with `A = V`.
    SaphyraFull,
    /// SaPHyRa_bc on the target subset.
    Saphyra,
}

impl Algo {
    /// Paper presentation order.
    pub fn all() -> [Algo; 4] {
        [Algo::Abra, Algo::Kadabra, Algo::SaphyraFull, Algo::Saphyra]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algo::Abra => "ABRA",
            Algo::Kadabra => "KADABRA",
            Algo::SaphyraFull => "SaPHyRa-full",
            Algo::Saphyra => "SaPHyRa",
        }
    }

    /// Whether the estimator depends on the target subset (re-run per
    /// subset) or estimates all nodes at once.
    pub fn subset_aware(&self) -> bool {
        matches!(self, Algo::Saphyra)
    }
}

/// One timed run.
pub struct RunOutput {
    /// Wall-clock seconds (includes all preprocessing, as in the paper).
    pub seconds: f64,
    /// Estimates aligned with the `targets` passed to [`run_algo`].
    pub subset_bc: Vec<f64>,
    /// Samples drawn.
    pub samples: usize,
}

/// Runs one algorithm on one target subset. SaPHyRa timings include the
/// index build (the paper does not amortize preprocessing either).
pub fn run_algo(
    algo: Algo,
    g: &Graph,
    targets: &[NodeId],
    eps: f64,
    delta: f64,
    seed: u64,
) -> RunOutput {
    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    match algo {
        Algo::Abra => {
            let est = abra(g, &AbraConfig::new(eps, delta), &mut rng);
            RunOutput {
                seconds: t0.elapsed().as_secs_f64(),
                subset_bc: est.subset(targets),
                samples: est.samples,
            }
        }
        Algo::Kadabra => {
            let est = kadabra(g, &KadabraConfig::new(eps, delta), &mut rng);
            RunOutput {
                seconds: t0.elapsed().as_secs_f64(),
                subset_bc: est.subset(targets),
                samples: est.samples,
            }
        }
        Algo::SaphyraFull => {
            let index = BcIndex::new(g);
            let est = index.rank_full(&SaphyraBcConfig::new(eps, delta), &mut rng);
            let seconds = t0.elapsed().as_secs_f64();
            let subset_bc = targets
                .iter()
                .map(|&v| est.bc[est.targets.binary_search(&v).expect("target present")])
                .collect();
            RunOutput {
                seconds,
                subset_bc,
                samples: est.stats.samples,
            }
        }
        Algo::Saphyra => {
            let index = BcIndex::new(g);
            let est = index.rank_subset(targets, &SaphyraBcConfig::new(eps, delta), &mut rng);
            RunOutput {
                seconds: t0.elapsed().as_secs_f64(),
                subset_bc: est.bc,
                samples: est.stats.samples,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saphyra_graph::fixtures;

    #[test]
    fn random_subsets_are_distinct_sorted() {
        let g = fixtures::grid_graph(10, 10);
        let mut rng = StdRng::seed_from_u64(1);
        let s = random_subset(&g, 20, &mut rng);
        assert_eq!(s.len(), 20);
        assert!(s.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn all_algorithms_run_and_agree_roughly() {
        let g = fixtures::grid_graph(8, 6);
        let truth = saphyra_graph::brandes::betweenness_exact(&g);
        let mut rng = StdRng::seed_from_u64(2);
        let targets = random_subset(&g, 10, &mut rng);
        for algo in Algo::all() {
            let out = run_algo(algo, &g, &targets, 0.05, 0.1, 7);
            assert_eq!(out.subset_bc.len(), 10, "{}", algo.name());
            for (i, &v) in targets.iter().enumerate() {
                let err = (out.subset_bc[i] - truth[v as usize]).abs();
                assert!(err < 0.06, "{} node {v}: err {err}", algo.name());
            }
        }
    }

    #[test]
    fn env_knobs_have_defaults() {
        assert!(trials_from_env(3).max(1) >= 1);
        let _ = scale_from_env();
        let _ = seed_from_env();
    }
}
