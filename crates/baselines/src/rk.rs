//! Riondato–Kornaropoulos: fixed-size shortest-path sampling
//! ("Fast approximation of betweenness centrality through sampling",
//! DMKD 2016).
//!
//! The sample size comes from the diameter-based VC bound of Table I:
//! `N = c/ε² (⌊log₂(VD(V)−1)⌋ + 1 + ln(1/δ))`. Each sample picks a uniform
//! ordered pair, samples one uniform shortest path between them (here via
//! the same balanced bidirectional BFS the other estimators use — the
//! distribution is identical to the original's Dijkstra-based sampler) and
//! credits the path's inner nodes with `1/N`. Disconnected pairs are
//! counted as zero-hit samples, matching the Eq. 3 normalization.
//!
//! Sampling is parallelized with the same counter-based chunk-RNG
//! discipline as the SaPHyRa estimators ([`saphyra_stats::stream`],
//! [`saphyra_stats::stream::par_grouped_fold`]): each worker owns a
//! [`BiBfs`] workspace, draws whole chunks, and accumulates integer hit
//! counts, so the estimate is bit-identical for every thread count and
//! the baseline comparison stays apples-to-apples.

use rand::RngCore;
use saphyra_graph::bbbfs::BiBfs;
use saphyra_graph::Graph;
use saphyra_stats::{stream, vc_sample_bound, C_VC};

use crate::common::{diameter_vc_bound, uniform_pair, BaselineEstimate};

/// RK configuration.
#[derive(Debug, Clone, Copy)]
pub struct RkConfig {
    /// Additive error target ε.
    pub eps: f64,
    /// Failure probability δ.
    pub delta: f64,
    /// Lemma 4 constant (default [`C_VC`]).
    pub c_vc: f64,
}

impl RkConfig {
    /// Standard configuration.
    pub fn new(eps: f64, delta: f64) -> Self {
        assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
        RkConfig {
            eps,
            delta,
            c_vc: C_VC,
        }
    }
}

/// Runs the RK estimator over the whole network.
pub fn rk(g: &Graph, cfg: &RkConfig, rng: &mut dyn RngCore) -> BaselineEstimate {
    let n = g.num_nodes();
    if n < 2 || g.num_edges() == 0 {
        return BaselineEstimate {
            bc: vec![0.0; n],
            samples: 0,
            converged_early: true,
        };
    }
    let vc = diameter_vc_bound(g);
    let samples = vc_sample_bound(cfg.eps, cfg.delta, vc).max(1);
    let master = rng.next_u64();

    let chunks = stream::num_chunks(samples, stream::CHUNK);
    // u64 counts merge exactly under any grouping: one O(n) accumulator
    // per worker, not per fixed group.
    let partials = stream::par_grouped_fold(
        chunks,
        stream::int_groups(),
        || (BiBfs::new(n), Vec::<u32>::new()),
        || vec![0u64; n],
        |(bb, path), local, c| {
            let mut rng = stream::chunk_rng(master, 0, c as u64);
            let len = stream::chunk_len(samples, stream::CHUNK, c);
            for _ in 0..len {
                let (s, t) = uniform_pair(n, &mut rng);
                let Some(res) = bb.query(g, s, t, |_| true) else {
                    continue; // disconnected pair: a zero-hit sample
                };
                if res.dist < 2 {
                    continue; // no inner nodes
                }
                bb.sample_path_into(g, res, &mut rng, |_| true, path);
                for &v in &path[1..path.len() - 1] {
                    local[v as usize] += 1;
                }
            }
        },
    );
    let mut counts = vec![0u64; n];
    for part in partials {
        for (t, x) in counts.iter_mut().zip(part) {
            *t += x;
        }
    }

    let inv = 1.0 / samples as f64;
    let bc: Vec<f64> = counts.iter().map(|&c| c as f64 * inv).collect();
    BaselineEstimate {
        bc,
        samples,
        converged_early: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saphyra_graph::brandes::betweenness_exact;
    use saphyra_graph::fixtures;

    #[test]
    fn accuracy_on_fixtures() {
        for (g, seed) in [
            (fixtures::grid_graph(6, 5), 1u64),
            (fixtures::paper_fig2(), 2),
            (fixtures::lollipop_graph(5, 5), 3),
        ] {
            let truth = betweenness_exact(&g);
            let mut rng = StdRng::seed_from_u64(seed);
            let est = rk(&g, &RkConfig::new(0.05, 0.1), &mut rng);
            for v in g.nodes() {
                let err = (est.bc[v as usize] - truth[v as usize]).abs();
                assert!(err < 0.05, "node {v}: err {err}");
            }
        }
    }

    #[test]
    fn sample_size_grows_with_tighter_eps() {
        let g = fixtures::grid_graph(5, 5);
        let mut rng = StdRng::seed_from_u64(4);
        let loose = rk(&g, &RkConfig::new(0.2, 0.1), &mut rng);
        let tight = rk(&g, &RkConfig::new(0.05, 0.1), &mut rng);
        assert!(tight.samples > loose.samples);
    }

    #[test]
    fn handles_disconnected_and_edgeless_graphs() {
        let g = fixtures::disconnected_mix();
        let mut rng = StdRng::seed_from_u64(5);
        let est = rk(&g, &RkConfig::new(0.1, 0.1), &mut rng);
        assert_eq!(est.bc.len(), 6);
        // All exact bc are zero here.
        assert!(est.bc.iter().all(|&x| x < 0.1));
        let empty = saphyra_graph::GraphBuilder::new(3).build().unwrap();
        let est = rk(&empty, &RkConfig::new(0.1, 0.1), &mut rng);
        assert_eq!(est.samples, 0);
    }

    #[test]
    fn estimate_is_bit_identical_across_thread_counts() {
        let g = fixtures::grid_graph(6, 6);
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    let mut rng = StdRng::seed_from_u64(77);
                    rk(&g, &RkConfig::new(0.08, 0.1), &mut rng)
                })
        };
        let reference = run(1);
        for threads in [2, 4, 8] {
            let est = run(threads);
            assert_eq!(est.bc, reference.bc, "{threads} threads");
            assert_eq!(est.samples, reference.samples);
        }
    }
}
