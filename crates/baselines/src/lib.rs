//! # saphyra-baselines
//!
//! The comparison set of the SaPHyRa evaluation (§V-A), reimplemented from
//! the original papers so that all algorithms run in one runtime:
//!
//! * [`mod@rk`] — Riondato–Kornaropoulos (DMKD 2016): fixed sample size from
//!   the diameter-based VC bound, uniform pair + uniform shortest-path
//!   sampling.
//! * [`mod@abra`] — Riondato–Upfal ABRA (KDD 2016): node-pair sampling where
//!   each sample credits *every* node on the pair's shortest-path DAG with
//!   its pair dependency, stopped by an empirical Rademacher-average bound.
//! * [`mod@kadabra`] — Borassi–Natale (ESA 2016): single-path sampling via
//!   balanced bidirectional BFS with per-node adaptive Bernstein stopping.
//! * [`exact`] — parallel Brandes, the ground-truth oracle.
//!
//! All estimators return betweenness for *all* nodes — the paper's point:
//! they cannot exploit a target subset, while SaPHyRa_bc can.

pub mod abra;
pub mod common;
pub mod exact;
pub mod kadabra;
pub mod rk;

pub use abra::{abra, AbraConfig};
pub use common::BaselineEstimate;
pub use exact::{exact_betweenness, exact_betweenness_serial};
pub use kadabra::{kadabra, KadabraConfig};
pub use rk::{rk, RkConfig};
