//! Shared baseline plumbing: the estimate container and uniform pair
//! sampling.

use rand::Rng;
use saphyra_graph::{Graph, NodeId};

/// Output of a whole-network baseline estimator.
#[derive(Debug, Clone)]
pub struct BaselineEstimate {
    /// Estimated betweenness for every node, Eq. 3 normalization.
    pub bc: Vec<f64>,
    /// Samples drawn.
    pub samples: usize,
    /// Whether an adaptive stopping rule fired before the worst-case budget
    /// (always true for fixed-size RK).
    pub converged_early: bool,
}

impl BaselineEstimate {
    /// Extracts estimates for a target subset, aligned with `targets`.
    pub fn subset(&self, targets: &[NodeId]) -> Vec<f64> {
        targets.iter().map(|&v| self.bc[v as usize]).collect()
    }
}

/// Draws a uniform ordered node pair `s ≠ t`.
#[inline]
pub fn uniform_pair<R: Rng + ?Sized>(n: usize, rng: &mut R) -> (NodeId, NodeId) {
    debug_assert!(n >= 2);
    let s = rng.gen_range(0..n as NodeId);
    let mut t = rng.gen_range(0..n as NodeId - 1);
    if t >= s {
        t += 1;
    }
    (s, t)
}

/// Diameter-based VC dimension used by the whole-network estimators
/// (Table I, "Riondato et al." column): `⌊log₂(VD(V) − 1)⌋ + 1` with the
/// `2·ecc` upper bound on VD per connected component.
pub fn diameter_vc_bound(g: &Graph) -> usize {
    let n = g.num_nodes();
    let mut ws = saphyra_graph::bfs::BfsWorkspace::new(n);
    let mut seen = vec![false; n];
    let mut vd_upper = 0u32;
    for v in g.nodes() {
        if seen[v as usize] || g.degree(v) == 0 {
            continue;
        }
        ws.run(g, v);
        for &u in &ws.order {
            seen[u as usize] = true;
        }
        vd_upper = vd_upper.max(2 * ws.eccentricity());
    }
    log2_floor_plus1(vd_upper.saturating_sub(1))
}

/// `⌊log₂ x⌋ + 1`, clamped to ≥ 1.
pub fn log2_floor_plus1(x: u32) -> usize {
    if x <= 1 {
        1
    } else {
        (31 - x.leading_zeros()) as usize + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_pair_never_equal_and_covers_all() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let (s, t) = uniform_pair(4, &mut rng);
            assert_ne!(s, t);
            seen.insert((s, t));
        }
        assert_eq!(seen.len(), 12); // all ordered pairs of 4 nodes
    }

    #[test]
    fn subset_extraction() {
        let est = BaselineEstimate {
            bc: vec![0.1, 0.2, 0.3, 0.4],
            samples: 10,
            converged_early: true,
        };
        assert_eq!(est.subset(&[3, 0]), vec![0.4, 0.1]);
    }

    #[test]
    fn diameter_vc_bound_on_fixtures() {
        use saphyra_graph::fixtures;
        // Path of 9: VD = 8, upper ≤ 16 -> vc ≤ log2(15)+1 = 4.
        let b = diameter_vc_bound(&fixtures::path_graph(9));
        assert!((3..=4).contains(&b), "b = {b}");
        // Complete graph: VD = 1, upper 2 -> log2(1)+1 = 1.
        assert_eq!(diameter_vc_bound(&fixtures::complete_graph(5)), 1);
    }
}
