//! Ground-truth oracle: exact parallel Brandes (the role the Cray XC40
//! played in the paper's evaluation, §V-A).

use saphyra_graph::brandes;
use saphyra_graph::Graph;

/// Exact betweenness with `threads` workers (0 = all available cores).
pub fn exact_betweenness(g: &Graph, threads: usize) -> Vec<f64> {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        threads
    };
    brandes::betweenness_exact_parallel(g, threads)
}

/// Exact betweenness, single-threaded (deterministic baseline for tests).
pub fn exact_betweenness_serial(g: &Graph) -> Vec<f64> {
    brandes::betweenness_exact(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use saphyra_graph::fixtures;

    #[test]
    fn parallel_default_matches_serial() {
        let g = fixtures::grid_graph(7, 6);
        let a = exact_betweenness(&g, 0);
        let b = exact_betweenness_serial(&g);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
