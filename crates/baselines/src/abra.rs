//! ABRA (Riondato–Upfal, KDD 2016): node-pair sampling with
//! Rademacher-average progressive stopping.
//!
//! Each sample draws a uniform ordered pair `(s, t)` and credits **every**
//! node `v` on the s-t shortest-path DAG with its pair dependency
//! `φ_st(v) = σ_st(v)/σ_st ∈ [0, 1]` — a fractional loss, unlike the 0-1
//! losses of path sampling. This makes samples individually more
//! informative but far more expensive: a truncated BFS plus a backward
//! dependency accumulation per sample (the factor behind ABRA's slow
//! wall-clock in Fig. 3).
//!
//! Stopping follows ABRA's scheme: at doubling checkpoints compute the
//! Massart-style upper bound on the empirical Rademacher average
//! `R̃ ≤ min_{s>0} (1/s)·ln Σ_v exp(s²‖φ_v‖²/(2N²))`
//! (1-D convex minimization, here by ternary search in log-space) and stop
//! once `ξ = 2R̃ + 3√(ln(3/δ_r)/(2N)) ≤ ε`, spending `δ_r = δ/2^r` per
//! checkpoint. The diameter-VC bound of RK caps the worst case.

use rand::RngCore;
use saphyra_graph::bfs::BfsWorkspace;
use saphyra_graph::{Graph, NodeId};
use saphyra_stats::{stream, vc_sample_bound, C_VC};

use crate::common::{diameter_vc_bound, uniform_pair, BaselineEstimate};

/// ABRA configuration.
#[derive(Debug, Clone, Copy)]
pub struct AbraConfig {
    /// Additive error target ε.
    pub eps: f64,
    /// Failure probability δ.
    pub delta: f64,
    /// Lemma 4 constant (default [`C_VC`]).
    pub c_vc: f64,
}

impl AbraConfig {
    /// Standard configuration.
    pub fn new(eps: f64, delta: f64) -> Self {
        assert!(eps > 0.0 && delta > 0.0 && delta < 1.0);
        AbraConfig {
            eps,
            delta,
            c_vc: C_VC,
        }
    }
}

/// Scratch space for the backward dependency accumulation.
struct DagScratch {
    phi: Vec<f64>,
    mark: Vec<u32>,
    generation: u32,
    nodes: Vec<NodeId>,
}

impl DagScratch {
    fn new(n: usize) -> Self {
        DagScratch {
            phi: vec![0.0; n],
            mark: vec![0; n],
            generation: 0,
            nodes: Vec::new(),
        }
    }
}

/// Computes `φ_st(v)` for all nodes on the pair DAG into `scratch`
/// (`scratch.nodes` lists them). Requires `ws` to hold a σ-counting BFS
/// from `s` that reached `t`.
fn pair_dependencies(g: &Graph, ws: &BfsWorkspace, t: NodeId, scratch: &mut DagScratch) {
    scratch.generation = scratch.generation.wrapping_add(1).max(1);
    let generation = scratch.generation;
    scratch.nodes.clear();
    // Reverse reachability from t along predecessor edges.
    scratch.mark[t as usize] = generation;
    scratch.nodes.push(t);
    let mut head = 0usize;
    while head < scratch.nodes.len() {
        let v = scratch.nodes[head];
        head += 1;
        let dv = ws.dist(v);
        for &u in g.neighbors(v) {
            if ws.visited(u) && ws.dist(u) + 1 == dv && scratch.mark[u as usize] != generation {
                scratch.mark[u as usize] = generation;
                scratch.nodes.push(u);
            }
        }
    }
    // Process by decreasing distance: φ(v) = σs(v)·Σ_succ φ(w)/σs(w).
    scratch
        .nodes
        .sort_unstable_by_key(|&v| std::cmp::Reverse(ws.dist(v)));
    for &v in &scratch.nodes {
        scratch.phi[v as usize] = 0.0;
    }
    scratch.phi[t as usize] = 1.0;
    for &v in &scratch.nodes {
        if v == t {
            continue;
        }
        let dv = ws.dist(v);
        let mut acc = 0.0;
        for &w in g.neighbors(v) {
            if scratch.mark[w as usize] == generation && ws.visited(w) && ws.dist(w) == dv + 1 {
                acc += scratch.phi[w as usize] / ws.sigma(w);
            }
        }
        scratch.phi[v as usize] = ws.sigma(v) * acc;
    }
}

/// The Massart-style ERA upper bound: `min_s (1/s)·ln Σ_v exp(s²·q_v/(2N²))`
/// where `q_v = Σ_j φ_v(x_j)²`. `zero_nodes` counts functions with `q = 0`
/// (they contribute `exp(0) = 1` each).
fn era_upper_bound(sumsq_nonzero: &[f64], zero_nodes: usize, n_samples: usize) -> f64 {
    let nn = (n_samples as f64) * (n_samples as f64);
    let eval = |s: f64| -> f64 {
        let mut acc = zero_nodes as f64;
        for &q in sumsq_nonzero {
            acc += (s * s * q / (2.0 * nn)).exp();
        }
        acc.ln() / s
    };
    // Ternary search over ln s; the objective is unimodal.
    let (mut lo, mut hi) = (0.0f64.max(1e-9).ln(), (1e9f64).ln());
    for _ in 0..200 {
        let m1 = lo + (hi - lo) / 3.0;
        let m2 = hi - (hi - lo) / 3.0;
        if eval(m1.exp()) < eval(m2.exp()) {
            hi = m2;
        } else {
            lo = m1;
        }
    }
    eval((0.5 * (lo + hi)).exp())
}

/// Draws `count` node-pair samples from chunks `first_chunk ..` and folds
/// their pair dependencies into `sums` / `sumsq`.
///
/// Chunks carry counter-based RNGs and fold inside the fixed-order groups
/// of [`stream::par_grouped_fold`]: one `f64` association order, so ABRA
/// stays bit-identical for every thread count like the SaPHyRa estimators
/// it is benchmarked against.
fn accumulate_block(
    g: &Graph,
    master: u64,
    first_chunk: u64,
    count: usize,
    sums: &mut [f64],
    sumsq: &mut [f64],
) {
    let n = g.num_nodes();
    let chunks = stream::num_chunks(count, stream::CHUNK);
    // Whole-graph f64 accumulators: cap groups so transient memory stays
    // bounded on large n (thread-count-independent, as f64 merging needs).
    // Trade-off: past ~2M nodes the cap shrinks below typical worker
    // counts and sampling parallelism degrades — inherent to O(n)-sized
    // deterministic f64 accumulators, acceptable for a baseline.
    let partials = stream::par_grouped_fold(
        chunks,
        stream::f64_groups(2 * n * std::mem::size_of::<f64>()),
        || (BfsWorkspace::new(n), DagScratch::new(n)),
        || (vec![0.0f64; n], vec![0.0f64; n]),
        |(ws, scratch), (s_acc, q_acc), c| {
            let mut rng = stream::chunk_rng(master, 0, first_chunk + c as u64);
            let len = stream::chunk_len(count, stream::CHUNK, c);
            for _ in 0..len {
                let (s, t) = uniform_pair(n, &mut rng);
                ws.run_counting(g, s, Some(t), |_| true);
                if ws.visited(t) && ws.dist(t) >= 2 {
                    pair_dependencies(g, ws, t, scratch);
                    for &v in &scratch.nodes {
                        if v == s || v == t {
                            continue;
                        }
                        let phi = scratch.phi[v as usize];
                        s_acc[v as usize] += phi;
                        q_acc[v as usize] += phi * phi;
                    }
                }
            }
        },
    );
    for (s_acc, q_acc) in partials {
        for v in 0..n {
            sums[v] += s_acc[v];
            sumsq[v] += q_acc[v];
        }
    }
}

/// Runs ABRA over the whole network.
pub fn abra(g: &Graph, cfg: &AbraConfig, rng: &mut dyn RngCore) -> BaselineEstimate {
    let n = g.num_nodes();
    if n < 2 || g.num_edges() == 0 {
        return BaselineEstimate {
            bc: vec![0.0; n],
            samples: 0,
            converged_early: true,
        };
    }
    let vc = diameter_vc_bound(g);
    let n0 = ((cfg.c_vc / (cfg.eps * cfg.eps) * (1.0 / cfg.delta).ln()).ceil() as usize).max(16);
    let nmax = vc_sample_bound(cfg.eps, cfg.delta, vc).max(n0);
    let master = rng.next_u64();

    let mut sums = vec![0.0f64; n];
    let mut sumsq = vec![0.0f64; n];

    let mut drawn = 0usize;
    let mut next_chunk = 0u64;
    let mut target = n0.min(nmax);
    let mut round = 0u32;
    let mut converged_early = false;
    loop {
        let block = target - drawn;
        accumulate_block(g, master, next_chunk, block, &mut sums, &mut sumsq);
        next_chunk += stream::num_chunks(block, stream::CHUNK) as u64;
        drawn = target;
        round += 1;
        let delta_r = cfg.delta / (1u64 << round.min(60)) as f64;
        let nonzero: Vec<f64> = sumsq.iter().copied().filter(|&q| q > 0.0).collect();
        let zero_nodes = n - nonzero.len();
        let era = era_upper_bound(&nonzero, zero_nodes, drawn);
        let xi = 2.0 * era + 3.0 * ((3.0 / delta_r).ln() / (2.0 * drawn as f64)).sqrt();
        if xi <= cfg.eps {
            converged_early = true;
            break;
        }
        if target >= nmax {
            break;
        }
        target = (2 * target).min(nmax);
    }

    let inv = 1.0 / drawn as f64;
    let bc: Vec<f64> = sums.iter().map(|&x| x * inv).collect();
    BaselineEstimate {
        bc,
        samples: drawn,
        converged_early,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use saphyra_graph::brandes::betweenness_exact;
    use saphyra_graph::{fixtures, GraphBuilder};

    #[test]
    fn pair_dependencies_on_diamond() {
        // 0-1, 0-2, 1-3, 2-3: φ_03(1) = φ_03(2) = 1/2.
        let g = GraphBuilder::new(4)
            .edges([(0, 1), (0, 2), (1, 3), (2, 3)])
            .build()
            .unwrap();
        let mut ws = BfsWorkspace::new(4);
        ws.run_counting(&g, 0, Some(3), |_| true);
        let mut scratch = DagScratch::new(4);
        pair_dependencies(&g, &ws, 3, &mut scratch);
        assert!((scratch.phi[1] - 0.5).abs() < 1e-12);
        assert!((scratch.phi[2] - 0.5).abs() < 1e-12);
        assert!((scratch.phi[3] - 1.0).abs() < 1e-12);
        assert!((scratch.phi[0] - 1.0).abs() < 1e-12); // source carries all
    }

    #[test]
    fn pair_dependencies_match_sigma_products() {
        // φ_st(v) must equal σs(v)·σt(v)/σ_st on every DAG node.
        let g = fixtures::grid_graph(5, 4);
        let (s, t) = (0u32, 19u32);
        let mut fwd = BfsWorkspace::new(20);
        let mut bwd = BfsWorkspace::new(20);
        fwd.run_counting(&g, s, None, |_| true);
        bwd.run_counting(&g, t, None, |_| true);
        let mut ws = BfsWorkspace::new(20);
        ws.run_counting(&g, s, Some(t), |_| true);
        let mut scratch = DagScratch::new(20);
        pair_dependencies(&g, &ws, t, &mut scratch);
        let d = fwd.dist(t);
        let sigma_st = fwd.sigma(t);
        for v in g.nodes() {
            let expect = if fwd.dist(v) + bwd.dist(v) == d {
                fwd.sigma(v) * bwd.sigma(v) / sigma_st
            } else {
                0.0
            };
            let got = if scratch.mark[v as usize] == scratch.generation {
                scratch.phi[v as usize]
            } else {
                0.0
            };
            assert!((got - expect).abs() < 1e-9, "node {v}: {got} vs {expect}");
        }
    }

    #[test]
    fn accuracy_on_fixtures() {
        for (g, seed) in [
            (fixtures::grid_graph(6, 5), 1u64),
            (fixtures::paper_fig2(), 2),
        ] {
            let truth = betweenness_exact(&g);
            let mut rng = StdRng::seed_from_u64(seed);
            let est = abra(&g, &AbraConfig::new(0.05, 0.1), &mut rng);
            for v in g.nodes() {
                let err = (est.bc[v as usize] - truth[v as usize]).abs();
                assert!(err < 0.05, "node {v}: err {err}");
            }
        }
    }

    #[test]
    fn estimate_is_bit_identical_across_thread_counts() {
        let g = fixtures::grid_graph(6, 5);
        let run = |threads: usize| {
            rayon::ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    let mut rng = StdRng::seed_from_u64(5);
                    abra(&g, &AbraConfig::new(0.08, 0.1), &mut rng)
                })
        };
        let reference = run(1);
        for threads in [2, 4, 8] {
            let est = run(threads);
            // f64 dependencies merge in a fixed group order: exact bits.
            assert_eq!(est.bc, reference.bc, "{threads} threads");
            assert_eq!(est.samples, reference.samples);
        }
    }

    #[test]
    fn era_bound_behaves() {
        // More samples with the same per-sample mass shrink the bound.
        let a = era_upper_bound(&[4.0, 2.0], 100, 100);
        let b = era_upper_bound(&[4.0, 2.0], 100, 1000);
        assert!(b < a);
        // A zero-information family still pays the ln(n)/s union term but
        // stays finite and positive.
        let c = era_upper_bound(&[], 1000, 100);
        assert!(c.is_finite() && c > 0.0);
    }
}
