//! Property-based checks of the baseline estimators: unbiasedness-style
//! aggregate invariants that hold on any graph, any seed.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra_baselines::{abra, kadabra, rk, AbraConfig, KadabraConfig, RkConfig};
use saphyra_graph::{Graph, GraphBuilder};

fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..=18).prop_flat_map(|n| {
        let max_edges = n * (n - 1) / 2;
        proptest::collection::vec((0..n as u32, 0..n as u32), 1..=max_edges)
            .prop_map(move |edges| GraphBuilder::new(n).edges(edges).build().unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn estimates_are_valid_probabilities(g in arb_graph(), seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        for est in [
            rk(&g, &RkConfig::new(0.2, 0.2), &mut rng).bc,
            kadabra(&g, &KadabraConfig::new(0.2, 0.2), &mut rng).bc,
            abra(&g, &AbraConfig::new(0.2, 0.2), &mut rng).bc,
        ] {
            prop_assert_eq!(est.len(), g.num_nodes());
            for (v, &x) in est.iter().enumerate() {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&x), "node {v}: {x}");
                // Leaves and isolated nodes are never interior.
                if g.degree(v as u32) < 2 {
                    prop_assert_eq!(x, 0.0);
                }
            }
        }
    }

    #[test]
    fn total_mass_is_bounded_by_average_interior_length(g in arb_graph(), seed in 0u64..100) {
        // Σ_v bc(v) = E[#inner nodes of a random shortest path] ≤ n − 2,
        // and the path-sampling estimators preserve this per sample.
        let mut rng = StdRng::seed_from_u64(seed);
        let est = rk(&g, &RkConfig::new(0.2, 0.2), &mut rng);
        let total: f64 = est.bc.iter().sum();
        prop_assert!(total <= g.num_nodes() as f64 - 2.0 + 1e-9, "total {total}");
    }

    #[test]
    fn estimates_within_epsilon_most_of_the_time(g in arb_graph(), seed in 0u64..20) {
        // δ = 0.2 per run; with proptest cases this is a smoke invariant,
        // not a sharp statistical test — use a generous 2ε envelope so the
        // property never flakes while still catching gross bias.
        let truth = saphyra_graph::brandes::betweenness_exact(&g);
        let mut rng = StdRng::seed_from_u64(seed);
        let eps = 0.15;
        let est = kadabra(&g, &KadabraConfig::new(eps, 0.2), &mut rng);
        for v in g.nodes() {
            let err = (est.bc[v as usize] - truth[v as usize]).abs();
            prop_assert!(err < 2.0 * eps, "node {v}: err {err}");
        }
    }
}
