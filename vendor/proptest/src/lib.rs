//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of proptest its tests use: the [`proptest!`] macro
//! (multiple `#[test]` fns, optional `#![proptest_config(..)]`),
//! [`Strategy`] with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`prelude::any`], and the
//! `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from upstream: no shrinking — a failing case panics with
//! its case index and per-case seed, which reproduces the inputs exactly
//! (generation is deterministic per test name). `PROPTEST_CASES`
//! overrides the case count like upstream.

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        ProptestConfig { cases }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// `prop_assert!`-family failure.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// A generator of random values of type `Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn new_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.base.new_value(rng))
    }
}

/// Output of [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.base.new_value(rng)).new_value(rng)
    }
}

/// Output of [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut StdRng) -> T {
        self.0.new_value(rng)
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// Types with a canonical strategy ([`prelude::any`]).
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy for [`Arbitrary`] scalars, sampling the full domain.
#[derive(Debug, Clone, Copy)]
pub struct AnyScalar<T>(std::marker::PhantomData<T>);

macro_rules! impl_arbitrary {
    ($($t:ty => |$rng:ident| $sample:expr),*) => {$(
        impl Strategy for AnyScalar<$t> {
            type Value = $t;
            fn new_value(&self, $rng: &mut StdRng) -> $t {
                $sample
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyScalar<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyScalar(std::marker::PhantomData)
            }
        }
    )*};
}
impl_arbitrary!(
    bool => |rng| rng.gen::<bool>(),
    u8 => |rng| rng.gen::<u8>(),
    u16 => |rng| rng.gen::<u16>(),
    u32 => |rng| rng.gen::<u32>(),
    u64 => |rng| rng.gen::<u64>(),
    usize => |rng| rng.gen::<usize>(),
    i32 => |rng| rng.gen::<i32>(),
    i64 => |rng| rng.gen::<i64>(),
    f64 => |rng| rng.gen::<f64>()
);

/// Collection strategies.
pub mod collection {
    use super::*;

    /// Length specification for [`vec`]: a fixed `usize`, `Range<usize>`,
    /// or `RangeInclusive<usize>`.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_inclusive: n,
            }
        }
    }
    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }
    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut StdRng) -> Self::Value {
            let len = rng.gen_range(self.size.lo..=self.size.hi_inclusive);
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates vectors of `element` values with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Deterministic per-(test, case) RNG so failures reproduce without
/// shrinking support.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Runs the body of one generated test (used by [`proptest!`]).
pub fn run_cases(
    test_name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
) {
    let mut rejected = 0u64;
    for case in 0..config.cases as u64 {
        let mut rng = case_rng(test_name, case);
        match body(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                let budget = (config.cases as u64 * 8).max(256);
                assert!(
                    rejected < budget,
                    "{test_name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{test_name}: case {case} failed: {msg}");
            }
        }
    }
}

/// Common imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };

    /// Namespace alias (`prop::collection::vec`, ...).
    pub mod prop {
        pub use crate::collection;
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

/// Property-test entry point; see the crate docs for the supported shape.
///
/// Argument lists are parsed by a token muncher (`@bind`) because an
/// `:expr` fragment may not be followed by `)` — each `pat in strategy`
/// pair becomes a `let` binding drawing from the per-case RNG.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (@expand ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            $crate::run_cases(stringify!($name), &config, |case_rng| {
                $crate::proptest!(@bind case_rng ($($args)* ,));
                $body
                Ok(())
            });
        }
    )*};
    (@bind $rng:ident ($pat:pat in $strat:expr, $($rest:tt)*)) => {
        let $pat = $crate::Strategy::new_value(&($strat), &mut *$rng);
        $crate::proptest!(@bind $rng ($($rest)*));
    };
    (@bind $rng:ident (,)) => {};
    (@bind $rng:ident ()) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside [`proptest!`]; failure reports the case instead of
/// unwinding through the generator.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// Inequality assertion inside [`proptest!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(format!($($fmt)*)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u64..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 5);
        }

        #[test]
        fn tuples_and_vec(v in crate::collection::vec((0u32..4, 0u32..4), 0..=6)) {
            prop_assert!(v.len() <= 6);
            for (a, b) in v {
                prop_assert!(a < 4 && b < 4);
            }
        }

        #[test]
        fn flat_map_dependent(pair in (2usize..8).prop_flat_map(|n| (Just(n), 0usize..n))) {
            let (n, i) = pair;
            prop_assert!(i < n, "i {} n {}", i, n);
        }

        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn any_bool_varies(v in crate::collection::vec(any::<bool>(), 64)) {
            prop_assert_eq!(v.len(), 64);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        use rand::RngCore;
        let a = crate::case_rng("t", 1).next_u64();
        let b = crate::case_rng("t", 1).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, crate::case_rng("t", 2).next_u64());
    }
}
