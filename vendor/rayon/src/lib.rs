//! Offline stand-in for the `rayon` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of rayon it uses: parallel iteration over index
//! ranges (`into_par_iter` + `map` / `map_init`, terminal `collect` /
//! `reduce` / `for_each`), [`ThreadPoolBuilder`] with
//! [`ThreadPool::install`], and [`current_num_threads`] honouring
//! `RAYON_NUM_THREADS`.
//!
//! Execution model: an index range of length `L` is split into
//! `min(L, current_num_threads())` contiguous blocks, one scoped OS thread
//! per block (`std::thread::scope`). This is a plain fork-join executor —
//! no work stealing — which is exactly what the deterministic
//! chunk-indexed sampling engine needs: item results are a pure function
//! of the item index, so *ordered* terminals (`collect`) are bit-identical
//! for every thread count. `reduce` combines block partials in
//! thread-count-dependent groupings, so callers must only reduce with
//! associative **and commutative** operations (integer sums); the
//! estimators use ordered `collect` + sequential folds for float merges.

use std::cell::Cell;
use std::ops::Range;

thread_local! {
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel calls on this thread will use.
///
/// Priority: innermost [`ThreadPool::install`] > `RAYON_NUM_THREADS` >
/// `std::thread::available_parallelism()`.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_OVERRIDE.with(|c| c.get()) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Error type of [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a sized [`ThreadPool`].
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of worker threads (0 = automatic).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(current_num_threads),
        })
    }
}

/// A logical pool: parallel calls inside [`ThreadPool::install`] use this
/// pool's thread count. (Threads are spawned per call, scoped, and joined
/// before the call returns.)
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing nested parallel
    /// iterators on the calling thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        // Drop guard: the previous size comes back even if `op` panics
        // (callers may catch the unwind and keep using this thread).
        let _restore = Restore(POOL_OVERRIDE.with(|c| c.replace(Some(self.num_threads))));
        op()
    }

    /// This pool's thread count.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }
}

/// Splits `len` items into at most `current_num_threads()` contiguous
/// blocks and runs `worker(block_range)` on scoped threads, returning the
/// per-block results in block order.
fn run_blocks<T, W>(len: usize, worker: W) -> Vec<T>
where
    T: Send,
    W: Fn(Range<usize>) -> T + Sync,
{
    let threads = current_num_threads().max(1);
    if len == 0 {
        return Vec::new();
    }
    let blocks = threads.min(len);
    if blocks == 1 {
        return vec![worker(0..len)];
    }
    let base = len / blocks;
    let extra = len % blocks;
    let ranges: Vec<Range<usize>> = (0..blocks)
        .map(|b| {
            let start = b * base + b.min(extra);
            let end = start + base + usize::from(b < extra);
            start..end
        })
        .collect();
    let worker = &worker;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(move || worker(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel worker panicked"))
            .collect()
    })
}

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The produced iterator.
    type Iter;
    /// Converts `self`.
    fn into_par_iter(self) -> Self::Iter;
}

macro_rules! impl_into_par_range {
    ($($t:ty),*) => {$(
        impl IntoParallelIterator for Range<$t> {
            type Iter = ParRange;
            fn into_par_iter(self) -> ParRange {
                ParRange {
                    start: self.start as u64,
                    len: (self.end.saturating_sub(self.start)) as usize,
                }
            }
        }
    )*};
}
impl_into_par_range!(u32, u64, usize);

/// Parallel iterator over an integer range; adapters receive indices as
/// `u64` regardless of the originating range's integer type.
pub struct ParRange {
    start: u64,
    len: usize,
}

impl ParRange {
    /// Maps each index through `f`.
    pub fn map<R, F>(self, f: F) -> ParMap<F>
    where
        F: Fn(u64) -> R + Sync,
        R: Send,
    {
        ParMap {
            start: self.start,
            len: self.len,
            f,
        }
    }

    /// Maps each index through `f` with per-worker state created by `init`.
    pub fn map_init<T, R, INIT, F>(self, init: INIT, f: F) -> ParMapInit<INIT, F>
    where
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, u64) -> R + Sync,
        R: Send,
    {
        ParMapInit {
            start: self.start,
            len: self.len,
            init,
            f,
        }
    }

    /// Runs `f` on every index.
    pub fn for_each<F>(self, f: F)
    where
        F: Fn(u64) + Sync,
    {
        let start = self.start;
        run_blocks(self.len, |r| {
            for i in r {
                f(start + i as u64);
            }
        });
    }
}

/// `range.map(f)` pipeline.
pub struct ParMap<F> {
    start: u64,
    len: usize,
    f: F,
}

impl<F> ParMap<F> {
    /// Collects results **in index order** (deterministic for any thread
    /// count when `f` is a pure function of the index).
    pub fn collect<R>(self) -> Vec<R>
    where
        F: Fn(u64) -> R + Sync,
        R: Send,
    {
        let (start, f) = (self.start, &self.f);
        concat(run_blocks(self.len, |r| {
            r.map(|i| f(start + i as u64)).collect::<Vec<R>>()
        }))
    }

    /// Reduces results with `op` starting from `identity` per block.
    ///
    /// Block boundaries depend on the thread count: `op` must be
    /// associative **and commutative** for thread-count-independent
    /// results (integer sums are; float sums are not — use `collect`).
    pub fn reduce<R, ID, OP>(self, identity: ID, op: OP) -> R
    where
        F: Fn(u64) -> R + Sync,
        R: Send,
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let (start, f, op) = (self.start, &self.f, &op);
        run_blocks(self.len, |r| {
            r.fold(identity(), |acc, i| op(acc, f(start + i as u64)))
        })
        .into_iter()
        .fold(identity(), op)
    }
}

/// `range.map_init(init, f)` pipeline: `init` runs once per worker block.
pub struct ParMapInit<INIT, F> {
    start: u64,
    len: usize,
    init: INIT,
    f: F,
}

impl<INIT, F> ParMapInit<INIT, F> {
    /// Collects results **in index order**.
    pub fn collect<T, R>(self) -> Vec<R>
    where
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, u64) -> R + Sync,
        R: Send,
    {
        let (start, init, f) = (self.start, &self.init, &self.f);
        concat(run_blocks(self.len, |r| {
            let mut state = init();
            r.map(|i| f(&mut state, start + i as u64))
                .collect::<Vec<R>>()
        }))
    }

    /// Reduces results with `op` (same commutativity caveat as
    /// [`ParMap::reduce`]).
    pub fn reduce<T, R, ID, OP>(self, identity: ID, op: OP) -> R
    where
        INIT: Fn() -> T + Sync,
        F: Fn(&mut T, u64) -> R + Sync,
        R: Send,
        ID: Fn() -> R + Sync,
        OP: Fn(R, R) -> R + Sync,
    {
        let (start, init, f, op) = (self.start, &self.init, &self.f, &op);
        run_blocks(self.len, |r| {
            let mut state = init();
            r.fold(identity(), |acc, i| {
                op(acc, f(&mut state, start + i as u64))
            })
        })
        .into_iter()
        .fold(identity(), op)
    }
}

fn concat<R>(parts: Vec<Vec<R>>) -> Vec<R> {
    let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        out.extend(p);
    }
    out
}

/// Common imports.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn collect_preserves_order() {
        let v: Vec<u64> = (0u64..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0u64..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn reduce_sums() {
        let s: u64 = (0u64..10_000)
            .into_par_iter()
            .map(|i| i)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 10_000 * 9_999 / 2);
    }

    #[test]
    fn map_init_reuses_state_per_block() {
        let inits = AtomicUsize::new(0);
        let v: Vec<usize> = (0usize..256)
            .into_par_iter()
            .map_init(
                || {
                    inits.fetch_add(1, Ordering::Relaxed);
                    0usize
                },
                |state, i| {
                    *state += 1;
                    i as usize
                },
            )
            .collect();
        assert_eq!(v.len(), 256);
        assert!(inits.load(Ordering::Relaxed) <= current_num_threads());
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.install(current_num_threads), 3);
        let one = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        let v: Vec<u64> = one.install(|| (0u64..100).into_par_iter().map(|i| i).collect());
        assert_eq!(v.len(), 100);
    }

    #[test]
    fn empty_range() {
        let v: Vec<u64> = (5u64..5).into_par_iter().map(|i| i).collect();
        assert!(v.is_empty());
        let s: u64 = (5u64..5)
            .into_par_iter()
            .map(|i| i)
            .reduce(|| 7, |a, b| a + b);
        assert_eq!(s, 7);
    }
}
