//! Offline stand-in for the `rand` crate (API-compatible subset of 0.8).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` it actually uses:
//!
//! * [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! * [`rngs::StdRng`] — here xoshiro256++ seeded via SplitMix64 (a
//!   high-quality, deterministic, seedable generator; *not* the same
//!   stream as upstream `StdRng`, which is ChaCha12 — only determinism
//!   per seed is promised, not cross-crate stream equality),
//! * `gen::<f64>()` (53-bit uniform in `[0, 1)`), `gen::<bool>()`, integer
//!   `gen`, and unbiased `gen_range` over integer and float ranges.
//!
//! Swapping back to the real crate is a one-line change in the workspace
//! manifest; no call sites would change.

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator (object-safe).
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// User-facing random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (`f64`/`f32`: uniform in `[0, 1)`; integers: uniform over the type).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (unbiased; panics on empty ranges).
    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a deterministic function of
    /// `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
    u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32,
    i32 => next_u32, i64 => next_u64, isize => next_u64);

/// Uniform draw of one `u64` in `[0, span)` by rejection (unbiased).
#[inline]
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Reject draws landing in the final partial block of size u64::MAX%span.
    let cap = u64::MAX - u64::MAX % span;
    loop {
        let v = rng.next_u64();
        if v < cap || cap == 0 {
            return v % span;
        }
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u: $t = Standard::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// SplitMix64: seeds the main generator and mixes counters into seeds.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Named generators.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2019).
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_unit_interval_and_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_is_unbiased_ish() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.gen_range(0..7usize)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 500.0, "count {c}");
        }
        // Inclusive ranges hit both endpoints.
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1000 {
            match rng.gen_range(3..=5u32) {
                3 => lo_seen = true,
                5 => hi_seen = true,
                4 => {}
                _ => panic!("out of range"),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn dyn_rng_core_object_usage() {
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let x = dyn_rng.gen::<f64>();
        assert!((0.0..1.0).contains(&x));
        let y = dyn_rng.gen_range(0..10u32);
        assert!(y < 10);
    }
}
