//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the slice of criterion its benches use: [`Criterion`] with
//! `sample_size` / `measurement_time` / `warm_up_time`, `bench_function`
//! with [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros. Timing methodology is criterion-shaped
//! (warmup to estimate per-iteration cost, then fixed-count samples of
//! batched iterations, median/mean/min/max over samples) without the
//! statistical machinery (no outlier analysis, no HTML reports).

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding `x` or the work producing it.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark driver: collects timing samples and prints a summary line per
/// benchmark.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
        }
    }
}

impl Criterion {
    /// Number of timing samples per benchmark (min 2).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warmup time before measurement.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one benchmark, printing `name ... time: [min median max]`.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            mode: Mode::Warmup {
                until: Instant::now() + self.warm_up_time,
                iters_done: 0,
            },
        };
        // Warmup: run the routine until the warmup clock expires, counting
        // iterations to estimate per-iteration cost.
        let warm_start = Instant::now();
        loop {
            f(&mut b);
            match &b.mode {
                Mode::Warmup { until, .. } if Instant::now() < *until => continue,
                _ => break,
            }
        }
        let iters_done = match b.mode {
            Mode::Warmup { iters_done, .. } => iters_done.max(1),
            _ => 1,
        };
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;

        // Measurement: sample_size samples, each batching enough iterations
        // to fill measurement_time / sample_size.
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((per_sample / per_iter.max(1e-12)) as u64).max(1);
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.mode = Mode::Measure {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if let Mode::Measure { elapsed, .. } = b.mode {
                samples.push(elapsed.as_secs_f64() / iters_per_sample as f64);
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<50} time: [{} {} {}]  (mean {}, {} samples x {} iters)",
            fmt_time(samples[0]),
            fmt_time(median),
            fmt_time(*samples.last().unwrap()),
            fmt_time(mean),
            samples.len(),
            iters_per_sample,
        );
        self
    }

    /// Compatibility no-op (upstream prints the final report here).
    pub fn final_summary(&mut self) {}
}

enum Mode {
    Warmup { until: Instant, iters_done: u64 },
    Measure { iters: u64, elapsed: Duration },
}

/// Handed to the benchmark closure; [`Bencher::iter`] runs the routine.
pub struct Bencher {
    mode: Mode,
}

impl Bencher {
    /// Times `routine` (called in a batch whose size the driver chooses).
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match &mut self.mode {
            Mode::Warmup { iters_done, .. } => {
                black_box(routine());
                *iters_done += 1;
            }
            Mode::Measure { iters, elapsed } => {
                let n = *iters;
                let t0 = Instant::now();
                for _ in 0..n {
                    black_box(routine());
                }
                *elapsed += t0.elapsed();
            }
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.4} s")
    } else if secs >= 1e-3 {
        format!("{:.4} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.4} µs", secs * 1e6)
    } else {
        format!("{:.4} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut count = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        assert!(count > 0);
    }
}
