//! Integration tests for the non-betweenness instantiations (k-path §II-A,
//! harmonic §VI) on generated networks — the framework-generality claim.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::closeness::{harmonic_exact, rank_harmonic};
use saphyra::framework::{estimate_risks_multi_exec, LocalExec};
use saphyra::kpath::{
    kpath_direct_monte_carlo, rank_kpath, rank_kpath_multi, rank_kpath_multi_with,
};
use saphyra_gen::datasets::{flickr_sim, road_sim, SizeClass};
use saphyra_stats::spearman_vs_truth;

#[test]
fn harmonic_meets_epsilon_on_generated_networks() {
    let g = flickr_sim(SizeClass::Tiny, 3);
    let truth = harmonic_exact(&g);
    let targets: Vec<u32> = (0..g.num_nodes() as u32).step_by(17).collect();
    let mut rng = StdRng::seed_from_u64(5);
    let est = rank_harmonic(&g, &targets, 0.05, 0.1, &mut rng);
    for (i, &v) in targets.iter().enumerate() {
        let err = (est.hc[i] - truth[v as usize]).abs();
        assert!(err < 0.05, "node {v}: err {err}");
    }
    let truth_sub: Vec<f64> = targets.iter().map(|&v| truth[v as usize]).collect();
    let rho = spearman_vs_truth(&est.hc, &truth_sub);
    assert!(rho > 0.9, "harmonic rho {rho}");
}

#[test]
fn harmonic_exact_subspace_separates_close_targets() {
    // Targets concentrated in one road area: their pairwise distances (the
    // hard tie-breaks) are covered by the exact subspace.
    let road = road_sim(SizeClass::Tiny, 3);
    let g = &road.graph;
    let truth = harmonic_exact(g);
    // Largest area (FL analogue): enough targets for a stable rank metric.
    let area = &road.case_study_areas()[3];
    let targets = area.nodes(&road);
    let mut rng = StdRng::seed_from_u64(9);
    let est = rank_harmonic(g, &targets, 0.02, 0.1, &mut rng);
    let truth_sub: Vec<f64> = targets.iter().map(|&v| truth[v as usize]).collect();
    let rho = spearman_vs_truth(&est.hc, &truth_sub);
    assert!(rho > 0.7, "area harmonic rho {rho}");
    assert!(est.inner.lambda < 1.0);
}

#[test]
fn kpath_framework_agrees_with_direct_monte_carlo() {
    let g = flickr_sim(SizeClass::Tiny, 7);
    let targets: Vec<u32> = (0..g.num_nodes() as u32).step_by(23).collect();
    let k = 4;
    let mut rng = StdRng::seed_from_u64(11);
    let est = rank_kpath(&g, &targets, k, 0.02, 0.1, &mut rng);
    let reference = kpath_direct_monte_carlo(&g, &targets, k, 300_000, &mut rng);
    for (i, (&a, &b)) in est.kpc.iter().zip(&reference).enumerate() {
        assert!((a - b).abs() < 0.02, "target {i}: {a} vs {b}");
    }
}

#[test]
fn kpath_hit_engine_matches_shared() {
    // The shared-draw stream (`rank_kpath_multi`) and the per-problem hit
    // engine (`rank_kpath_multi_with` over a `BlockExec`) must produce
    // bit-identical estimates: walk drawing never looks at the target set
    // and scoring consumes no RNG, so per-demand hit counts coincide.
    // This is the contract that lets a router answer a split graph's
    // k-path request through shard backends without changing a byte.
    let g = flickr_sim(SizeClass::Tiny, 7);
    let n = g.num_nodes() as u32;
    let sets = vec![
        (0..n).step_by(23).collect::<Vec<u32>>(),
        (1..n).step_by(41).collect::<Vec<u32>>(),
        vec![0, n / 2, n - 1],
    ];
    let k = 4;
    for seed in [3u64, 11, 29] {
        let mut rng_a = StdRng::seed_from_u64(seed);
        let shared = rank_kpath_multi(&g, &sets, k, 0.05, 0.1, &mut rng_a);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let via_exec = rank_kpath_multi_with(
            &g,
            &sets,
            k,
            0.05,
            0.1,
            &mut rng_b,
            |_orig, problems, cfgs, master| {
                estimate_risks_multi_exec(problems, cfgs, &mut LocalExec::new(problems, master))
            },
        )
        .unwrap();
        for (a, b) in shared.iter().zip(&via_exec) {
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<u64>>();
            assert_eq!(bits(&a.kpc), bits(&b.kpc), "seed {seed}: estimates diverge");
            assert_eq!(
                a.inner.outcome.samples_used, b.inner.outcome.samples_used,
                "seed {seed}"
            );
        }
    }
}

#[test]
fn measures_rank_different_things() {
    // Sanity: on a lollipop, the path tail has near-zero k-path centrality
    // but nonzero harmonic mass — the measures must not be conflated.
    let g = saphyra_graph::fixtures::lollipop_graph(8, 8);
    let tip = (g.num_nodes() - 1) as u32;
    let targets = vec![0u32, tip];
    let mut rng = StdRng::seed_from_u64(13);
    let h = rank_harmonic(&g, &targets, 0.02, 0.1, &mut rng);
    let p = rank_kpath(&g, &targets, 5, 0.02, 0.1, &mut rng);
    assert!(h.hc[1] > 0.0, "tail tip is reachable: harmonic > 0");
    // Walks concentrate on the clique side; the tip still catches walks
    // that start on the tail, so the gap is a ratio, not a cliff.
    assert!(
        p.kpc[0] > 1.3 * p.kpc[1],
        "clique node leads the walk ranking: {} vs {}",
        p.kpc[0],
        p.kpc[1]
    );
    // Betweenness tells yet another story: both the clique interior and the
    // tail tip have bc = 0 here, while harmonic/k-path rank them apart.
    let bc = saphyra_graph::brandes::betweenness_exact(&g);
    assert_eq!(bc[tip as usize], 0.0);
}
