//! End-to-end integration: generated networks → exact ground truth → every
//! estimator → accuracy and ranking-quality assertions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saphyra::bc::{BcIndex, SaphyraBcConfig};
use saphyra_baselines::{
    abra, exact_betweenness, kadabra, rk, AbraConfig, KadabraConfig, RkConfig,
};
use saphyra_gen::datasets::{SimNetwork, SizeClass};
use saphyra_stats::spearman_vs_truth;

fn random_targets(n: usize, k: usize, rng: &mut StdRng) -> Vec<u32> {
    let mut set = std::collections::BTreeSet::new();
    while set.len() < k {
        set.insert(rng.gen_range(0..n as u32));
    }
    set.into_iter().collect()
}

#[test]
fn all_estimators_meet_epsilon_on_all_tiny_networks() {
    let eps = 0.1;
    for net in SimNetwork::all() {
        let g = net.build(SizeClass::Tiny, 5);
        let truth = exact_betweenness(&g, 0);
        let mut rng = StdRng::seed_from_u64(17);
        let targets = random_targets(g.num_nodes(), 40, &mut rng);
        let truth_sub: Vec<f64> = targets.iter().map(|&v| truth[v as usize]).collect();

        let index = BcIndex::new(&g);
        let sap = index.rank_subset(&targets, &SaphyraBcConfig::new(eps, 0.05), &mut rng);
        let kad = kadabra(&g, &KadabraConfig::new(eps, 0.05), &mut rng).subset(&targets);
        let ab = abra(&g, &AbraConfig::new(eps, 0.05), &mut rng).subset(&targets);
        let rk_est = rk(&g, &RkConfig::new(eps, 0.05), &mut rng).subset(&targets);

        for (name, est) in [
            ("saphyra", &sap.bc),
            ("kadabra", &kad),
            ("abra", &ab),
            ("rk", &rk_est),
        ] {
            for (i, &v) in targets.iter().enumerate() {
                let err = (est[i] - truth_sub[i]).abs();
                assert!(
                    err < eps,
                    "{name} on {}: node {v} err {err} > eps {eps}",
                    net.name()
                );
            }
        }
    }
}

#[test]
fn saphyra_rank_quality_dominates_baselines_at_loose_eps() {
    // The paper's core claim: at an ε coarser than most centrality values,
    // SaPHyRa still ranks well (exact subspace) while path samplers degrade.
    let eps = 0.1;
    let g = SimNetwork::Orkut.build(SizeClass::Tiny, 11);
    let truth = exact_betweenness(&g, 0);
    let mut rng = StdRng::seed_from_u64(23);

    let mut rho_sap = Vec::new();
    let mut rho_kad = Vec::new();
    let index = BcIndex::new(&g);
    let kad = kadabra(&g, &KadabraConfig::new(eps, 0.05), &mut rng);
    for trial in 0..5 {
        let mut srng = StdRng::seed_from_u64(100 + trial);
        let targets = random_targets(g.num_nodes(), 50, &mut srng);
        let truth_sub: Vec<f64> = targets.iter().map(|&v| truth[v as usize]).collect();
        let sap = index.rank_subset(&targets, &SaphyraBcConfig::new(eps, 0.05), &mut srng);
        rho_sap.push(spearman_vs_truth(&sap.bc, &truth_sub));
        rho_kad.push(spearman_vs_truth(&kad.subset(&targets), &truth_sub));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&rho_sap) > mean(&rho_kad) + 0.05,
        "saphyra {:?} vs kadabra {:?}",
        rho_sap,
        rho_kad
    );
    assert!(mean(&rho_sap) > 0.9, "saphyra rho too low: {rho_sap:?}");
}

#[test]
fn no_false_zeros_end_to_end() {
    for net in [SimNetwork::LiveJournal, SimNetwork::UsaRoad] {
        let g = net.build(SizeClass::Tiny, 3);
        let truth = exact_betweenness(&g, 0);
        let mut rng = StdRng::seed_from_u64(7);
        let targets = random_targets(g.num_nodes(), 60, &mut rng);
        let index = BcIndex::new(&g);
        // Deliberately coarse ε: the sampling phase may see nothing.
        let est = index.rank_subset(&targets, &SaphyraBcConfig::new(0.3, 0.1), &mut rng);
        for (i, &v) in targets.iter().enumerate() {
            if truth[v as usize] > 0.0 {
                assert!(
                    est.bc[i] > 0.0,
                    "{}: node {v} bc {} estimated zero",
                    net.name(),
                    truth[v as usize]
                );
            }
        }
    }
}

#[test]
fn index_reuse_across_subsets_is_consistent() {
    let g = SimNetwork::Flickr.build(SizeClass::Tiny, 2);
    let truth = exact_betweenness(&g, 0);
    let index = BcIndex::new(&g);
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let targets = random_targets(g.num_nodes(), 30, &mut rng);
        let est = index.rank_subset(&targets, &SaphyraBcConfig::new(0.05, 0.1), &mut rng);
        for (i, &v) in targets.iter().enumerate() {
            assert!((est.bc[i] - truth[v as usize]).abs() < 0.05);
        }
    }
}
