//! Docker-free three-process sharded deployment e2e: two `--role shard`
//! server processes, one `--role router` process fronting them, plus a
//! standalone process as the reference — the router's `/rank` bytes for a
//! split graph must compare equal to the standalone server's for every
//! measure, and a killed shard must surface as a clean 503.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

use saphyra_service::http::Client;

/// A spawned `saphyra-cli serve` process; killed on drop so a failing
/// assertion never leaks servers.
struct ServerProc {
    child: Child,
    addr: String,
}

impl ServerProc {
    fn spawn(extra: &[&str]) -> ServerProc {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_cli"));
        cmd.arg("serve")
            .arg("127.0.0.1:0")
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        let mut child = cmd.spawn().expect("spawn saphyra-cli serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut lines = BufReader::new(stdout).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("server exited before announcing its address")
                .expect("read server stdout");
            if let Some(addr) = line.strip_prefix("listening on ") {
                break addr.trim().to_string();
            }
        };
        // Drain the rest of stdout so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines.map_while(Result::ok) {});
        ServerProc { child, addr }
    }

    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ServerProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Loads the shared test graph through the `query load` CLI (exercising
/// `--split` end-to-end when asked).
fn cli_load(addr: &str, split: bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cli"));
    cmd.args(["query", addr, "load", "--name", "g", "--gen", "flickr:tiny"]);
    cmd.args(["--seed", "7"]);
    if split {
        cmd.arg("--split");
    }
    let out = cmd.output().expect("run saphyra-cli query load");
    assert!(
        out.status.success(),
        "load on {addr} failed: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn rank_body(measure: &str, seed: u64) -> String {
    format!(
        r#"{{"graph":"g","measure":"{measure}","targets":[0,3,9,17,40],"eps":0.2,"delta":0.1,"seed":{seed},"khops":4}}"#
    )
}

#[test]
fn three_process_sharded_rank_matches_standalone_bytes() {
    let shard_a = ServerProc::spawn(&["--role", "shard"]);
    let shard_b = ServerProc::spawn(&["--role", "shard"]);
    let router = ServerProc::spawn(&[
        "--role",
        "router",
        "--shards",
        &format!("{},{}", shard_a.addr, shard_b.addr),
    ]);
    let standalone = ServerProc::spawn(&[]);

    cli_load(&router.addr, true);
    cli_load(&standalone.addr, false);

    let mut via_router = Client::new(router.addr.clone());
    let mut reference = Client::new(standalone.addr.clone());

    // Roles are visible in /healthz.
    let health = via_router.request("GET", "/healthz", None).unwrap();
    assert!(
        health.body.contains("\"role\":\"router\""),
        "{}",
        health.body
    );

    for measure in ["bc", "kpath", "harmonic"] {
        let body = rank_body(measure, 41);
        let sharded = via_router.request("POST", "/rank", Some(&body)).unwrap();
        assert_eq!(sharded.status, 200, "{measure}: {}", sharded.body);
        let solo = reference.request("POST", "/rank", Some(&body)).unwrap();
        assert_eq!(solo.status, 200, "{measure}: {}", solo.body);
        assert_eq!(
            sharded.body, solo.body,
            "{measure}: 3-process bytes diverge from standalone"
        );
    }

    // Kill the first shard (it owns the leading chunk share of every
    // round): a cold request must come back as a clean JSON 503.
    let dead_addr = shard_a.addr.clone();
    shard_a.kill();
    let cold = rank_body("bc", 42);
    let resp = via_router.request("POST", "/rank", Some(&cold)).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body);
    assert!(resp.body.contains("error"), "{}", resp.body);
    assert!(
        resp.body.contains(&dead_addr),
        "503 does not name the dead shard: {}",
        resp.body
    );

    // Graceful shutdown of what's left.
    for (client, proc_) in [(&mut via_router, router), (&mut reference, standalone)] {
        let r = client.request("POST", "/shutdown", None).unwrap();
        assert_eq!(r.status, 200);
        proc_.kill();
    }
    let mut b = Client::new(shard_b.addr.clone());
    assert_eq!(b.request("POST", "/shutdown", None).unwrap().status, 200);
    shard_b.kill();
}
