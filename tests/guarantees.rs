//! Statistical validation of the (ε, δ) guarantees (Theorem 6 / Theorem 24)
//! and of the subset-vs-full consistency.

use rand::rngs::StdRng;
use rand::SeedableRng;
use saphyra::bc::{BcIndex, SaphyraBcConfig};
use saphyra_graph::brandes::betweenness_exact;
use saphyra_graph::fixtures;

#[test]
fn theorem24_failure_rate_within_delta() {
    // 25 independent runs at δ = 0.2: the number of runs with any target
    // deviating by ≥ ε is Binomial(25, ≤0.2); ≥ 13 failures has probability
    // < 1e-4, so the assertion is both meaningful and stable.
    let g = fixtures::grid_graph(8, 8);
    let truth = betweenness_exact(&g);
    let index = BcIndex::new(&g);
    let targets: Vec<u32> = (0..64u32).step_by(3).collect();
    let (eps, delta) = (0.03, 0.2);
    let mut failures = 0;
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let est = index.rank_subset(&targets, &SaphyraBcConfig::new(eps, delta), &mut rng);
        let bad = targets
            .iter()
            .enumerate()
            .any(|(i, &v)| (est.bc[i] - truth[v as usize]).abs() >= eps);
        if bad {
            failures += 1;
        }
    }
    assert!(failures < 13, "failures {failures}/25 at delta {delta}");
}

#[test]
fn subset_and_full_agree_within_two_epsilon() {
    let g = fixtures::grid_graph(7, 7);
    let index = BcIndex::new(&g);
    let targets: Vec<u32> = vec![8, 16, 24, 32, 40];
    let eps = 0.04;
    let mut rng = StdRng::seed_from_u64(3);
    let sub = index.rank_subset(&targets, &SaphyraBcConfig::new(eps, 0.05), &mut rng);
    let full = index.rank_full(&SaphyraBcConfig::new(eps, 0.05), &mut rng);
    for (i, &v) in targets.iter().enumerate() {
        let f = full.bc[full.targets.binary_search(&v).unwrap()];
        assert!(
            (sub.bc[i] - f).abs() < 2.0 * eps,
            "node {v}: subset {} vs full {f}",
            sub.bc[i]
        );
    }
}

#[test]
fn exact_components_are_deterministic_across_seeds() {
    // bcₐ and the 2-hop exact part must not depend on the RNG.
    let g = fixtures::lollipop_graph(6, 5);
    let index = BcIndex::new(&g);
    let targets: Vec<u32> = g.nodes().collect();
    let runs: Vec<_> = (0..3u64)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            index.rank_subset(&targets, &SaphyraBcConfig::new(0.05, 0.1), &mut rng)
        })
        .collect();
    for est in &runs[1..] {
        assert_eq!(est.bca_part, runs[0].bca_part);
        assert_eq!(est.exact_path_part, runs[0].exact_path_part);
    }
}

#[test]
fn tighter_epsilon_means_no_fewer_samples() {
    let g = fixtures::grid_graph(10, 8);
    let index = BcIndex::new(&g);
    let targets: Vec<u32> = (0..80u32).step_by(5).collect();
    let mut samples = Vec::new();
    for eps in [0.2, 0.05, 0.02] {
        let mut rng = StdRng::seed_from_u64(1);
        let est = index.rank_subset(&targets, &SaphyraBcConfig::new(eps, 0.05), &mut rng);
        samples.push(est.stats.samples);
    }
    assert!(
        samples[0] <= samples[1] && samples[1] <= samples[2],
        "samples not monotone: {samples:?}"
    );
}
