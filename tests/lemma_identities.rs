//! Cross-crate validation of the paper's central identities, by exact
//! enumeration (no sampling noise):
//!
//! * Lemma 13/15: `bc(v) = bcₐ(v) + γ·E_{p∼Dc}[g(v, p)]` — connects the
//!   biconnected decomposition, out-reach weights, break-point correction
//!   and the ISP distribution to ground-truth Brandes betweenness.
//! * Eq. 18: out-reach sums.
//! * Eq. 19/23: γ/η consistency.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saphyra::bc::{bca_values, gamma, Outreach};
use saphyra_graph::bfs::BfsWorkspace;
use saphyra_graph::brandes::betweenness_exact;
use saphyra_graph::{fixtures, Bicomps, BlockCutTree, Graph, GraphBuilder};

/// Exact `γ·E_{p∼Dc}[g(v, p)]` for all nodes, by enumerating every ordered
/// intra-component pair and accumulating pair dependencies within the
/// component (O(Σ|C|² · m); tiny graphs only).
fn exact_isp_mass(g: &Graph, bic: &Bicomps, outreach: &Outreach) -> Vec<f64> {
    let n = g.num_nodes();
    let mut acc = vec![0.0f64; n];
    if n < 2 {
        return acc;
    }
    let norm = 1.0 / (n as f64 * (n as f64 - 1.0));
    let mut fwd = BfsWorkspace::new(n);
    let mut bwd = BfsWorkspace::new(n);
    for b in 0..bic.num_bicomps as u32 {
        let nodes = bic.nodes_of(b).to_vec();
        let rs = outreach.r_slice(bic, b).to_vec();
        for (i, &s) in nodes.iter().enumerate() {
            fwd.run_counting(g, s, None, |slot| bic.bicomp_of_slot(g, slot) == b);
            for (j, &t) in nodes.iter().enumerate() {
                if i == j {
                    continue;
                }
                bwd.run_counting(g, t, None, |slot| bic.bicomp_of_slot(g, slot) == b);
                let d = fwd.dist(t);
                assert_ne!(
                    d,
                    saphyra_graph::bfs::INFINITY,
                    "co-component pair connected"
                );
                let q = rs[i] as f64 * rs[j] as f64 * norm;
                let sigma_st = fwd.sigma(t);
                for &v in &nodes {
                    if v != s && v != t && fwd.dist(v) + bwd.dist(v) == d {
                        acc[v as usize] += q * fwd.sigma(v) * bwd.sigma(v) / sigma_st;
                    }
                }
            }
        }
    }
    acc
}

fn check_lemma13(g: &Graph) {
    let bic = Bicomps::compute(g);
    let tree = BlockCutTree::compute(&bic);
    let outreach = Outreach::compute(&bic, &tree);
    let bca = bca_values(g, &bic, &tree);
    let isp = exact_isp_mass(g, &bic, &outreach);
    let bc = betweenness_exact(g);
    for v in g.nodes() {
        let reconstructed = bca[v as usize] + isp[v as usize];
        assert!(
            (reconstructed - bc[v as usize]).abs() < 1e-10,
            "node {v}: bca {} + isp {} = {} but bc = {}",
            bca[v as usize],
            isp[v as usize],
            reconstructed,
            bc[v as usize]
        );
    }
    // Eq. 19 sanity: γ equals the total enumerated ISP pair mass.
    let n = g.num_nodes() as f64;
    let gm = gamma(g, &outreach);
    let mut mass = 0.0;
    for b in 0..bic.num_bicomps as u32 {
        let rs = outreach.r_slice(&bic, b);
        let total: f64 = rs.iter().map(|&x| x as f64).sum();
        for &r in rs {
            mass += r as f64 * (total - r as f64);
        }
    }
    assert!((gm - mass / (n * (n - 1.0))).abs() < 1e-12);
}

#[test]
fn lemma13_on_fixtures() {
    for g in [
        fixtures::paper_fig2(),
        fixtures::path_graph(7),
        fixtures::cycle_graph(8),
        fixtures::grid_graph(4, 4),
        fixtures::lollipop_graph(5, 4),
        fixtures::two_triangles_bridge(),
        fixtures::star_graph(8),
        fixtures::binary_tree(3),
        fixtures::disconnected_mix(),
        fixtures::complete_graph(6),
    ] {
        check_lemma13(&g);
    }
}

#[test]
fn lemma13_on_random_graphs() {
    let mut rng = StdRng::seed_from_u64(99);
    for round in 0..12 {
        let n = 10 + (round % 4) * 5;
        let p = 0.08 + 0.04 * (round % 3) as f64;
        let mut b = GraphBuilder::new(n);
        for u in 0..n as u32 {
            for v in (u + 1)..n as u32 {
                if rng.gen::<f64>() < p {
                    b.push(u, v);
                }
            }
        }
        check_lemma13(&b.build().unwrap());
    }
}

#[test]
fn eta_equals_one_for_full_targets() {
    for g in [fixtures::paper_fig2(), fixtures::grid_graph(4, 4)] {
        let bic = Bicomps::compute(&g);
        let tree = BlockCutTree::compute(&bic);
        let outreach = Outreach::compute(&bic, &tree);
        let all: Vec<u32> = g.nodes().collect();
        let pisp = saphyra::bc::Pisp::new(&bic, &outreach, &all);
        assert!((pisp.eta - 1.0).abs() < 1e-12);
    }
}
