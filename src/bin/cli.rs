//! `saphyra-cli` — rank nodes of an edge-list graph from the command line.
//!
//! ```text
//! saphyra-cli info  <edge-list>
//! saphyra-cli exact <edge-list> [--top K] [--threads N]
//! saphyra-cli rank  <edge-list> --targets 1,2,3 [--measure bc|kpath|harmonic]
//!                   [--eps 0.01] [--delta 0.01] [--seed 7] [--khops 5]
//! saphyra-cli rank  <edge-list> --random 100 [...]
//! saphyra-cli gen   <flickr|livejournal|usa-road|orkut> <tiny|small|full> <out-file>
//! saphyra-cli serve <addr> [--workers N] [--cache N] [--state-dir DIR]
//!                   [--max-connections N] [--pipeline-depth N] [--journal-max-bytes N]
//!                   [--resnapshot-deltas N] [--batch-window-ms N]
//!                   [--role standalone|router|shard]
//!                   [--shards host:port,host:port,...]
//! saphyra-cli snapshot save <edge-list> <out.snap> [--name G]
//! saphyra-cli snapshot load <file.snap>
//! saphyra-cli snapshot verify <file.snap>
//! saphyra-cli snapshot replay <state-dir>
//! saphyra-cli query <addr> health
//! saphyra-cli query <addr> graphs
//! saphyra-cli query <addr> load --name G (--path <edge-list> | --gen <network>:<size>) [--seed S] [--split]
//! saphyra-cli query <addr> patch G [--insert u,v]... [--delete u,v]...
//! saphyra-cli query <addr> rank --graph G --targets 1,2,3 [--measure M]
//!                   [--eps 0.01] [--delta 0.01] [--seed 7] [--khops 5] [--repeat N]
//! saphyra-cli query <addr> shutdown
//! ```
//!
//! `serve` runs the long-lived ranking service of [`saphyra_service`]
//! (bind to port 0 for an ephemeral port; the bound address is printed as
//! `listening on <addr>`). With `--state-dir` the registry persists across
//! restarts: graph loads write crash-safe snapshots, `/rank` requests
//! append to a journal, and boots restore every snapshot without
//! recomputing decompositions. `snapshot` drives the same persistence code
//! paths offline: `save` precomputes a snapshot from an edge list, `load`
//! and `verify` inspect one, `replay` applies a state dir's journaled
//! patch deltas and then re-issues its journaled requests against its
//! snapshots. `query` is the tiny client used by tests/CI; it talks over
//! one persistent (keep-alive) connection, `rank --repeat N` replays the
//! same request N times on it (printing one body per line), and `patch`
//! sends an edge delta (`PATCH /graphs/<name>`) built from repeated
//! `--insert u,v` / `--delete u,v` flags.

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saphyra::bc::{BcIndex, SaphyraBcConfig};
use saphyra::closeness::rank_harmonic;
use saphyra::kpath::rank_kpath;
use saphyra_graph::{io, Graph, NodeId};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Info {
        path: String,
    },
    Exact {
        path: String,
        top: usize,
        threads: usize,
    },
    Rank {
        path: String,
        targets: TargetSpec,
        measure: Measure,
        eps: f64,
        delta: f64,
        seed: u64,
        khops: usize,
    },
    Gen {
        network: String,
        size: String,
        out: String,
        seed: u64,
    },
    Serve {
        addr: String,
        workers: usize,
        cache: usize,
        max_connections: usize,
        pipeline_depth: usize,
        journal_max_bytes: Option<u64>,
        state_dir: Option<String>,
        /// Fold journaled `PATCH` deltas into a fresh snapshot every this
        /// many applied deltas per graph.
        resnapshot_deltas: usize,
        /// Gather window (ms) for cross-request batching of cold `/rank`
        /// requests that differ only in targets; 0 disables gathering.
        batch_window_ms: u64,
        /// Node role in a sharded deployment (standalone by default).
        role: saphyra_service::Role,
        /// Shard backend addresses (`--shards`, routers only).
        shards: Vec<String>,
    },
    Snapshot(SnapshotCmd),
    Query {
        addr: String,
        method: &'static str,
        path: String,
        body: Option<String>,
        /// Send the request this many times over one persistent connection
        /// (printing each body); used by CI to exercise keep-alive.
        repeat: usize,
    },
}

#[derive(Debug, Clone, PartialEq)]
enum TargetSpec {
    List(Vec<NodeId>),
    Random(usize),
}

/// Offline snapshot operations (same code paths as `serve --state-dir`).
#[derive(Debug, Clone, PartialEq)]
enum SnapshotCmd {
    Save {
        input: String,
        out: String,
        name: Option<String>,
    },
    Load {
        path: String,
    },
    Verify {
        path: String,
    },
    Replay {
        dir: String,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Measure {
    Betweenness,
    KPath,
    Harmonic,
}

fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or("missing command (info|exact|rank|gen)")?;
    match cmd.as_str() {
        "info" => {
            let path = it.next().ok_or("info: missing edge-list path")?.clone();
            Ok(Command::Info { path })
        }
        "exact" => {
            let path = it.next().ok_or("exact: missing edge-list path")?.clone();
            let (mut top, mut threads) = (10usize, 0usize);
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--top" => top = next_parse(&mut it, "--top")?,
                    "--threads" => {
                        threads = next_parse(&mut it, "--threads")?;
                        saphyra::params::check_threads(threads)
                            .map_err(|e| format!("--threads: {e}"))?;
                    }
                    other => return Err(format!("exact: unknown flag {other}")),
                }
            }
            Ok(Command::Exact { path, top, threads })
        }
        "rank" => {
            let path = it.next().ok_or("rank: missing edge-list path")?.clone();
            let mut targets = None;
            let mut measure = Measure::Betweenness;
            let (mut eps, mut delta, mut seed, mut khops) = (0.01f64, 0.01f64, 2022u64, 5usize);
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--targets" => {
                        let list = it.next().ok_or("--targets needs a value")?;
                        let ids: Result<Vec<NodeId>, _> =
                            list.split(',').map(|s| s.trim().parse()).collect();
                        targets = Some(TargetSpec::List(
                            ids.map_err(|_| format!("--targets: cannot parse {list:?}"))?,
                        ));
                    }
                    "--random" => {
                        let k: usize = next_parse(&mut it, "--random")?;
                        if k == 0 {
                            return Err("--random: target count must be >= 1".to_string());
                        }
                        targets = Some(TargetSpec::Random(k))
                    }
                    "--measure" => {
                        let m = it.next().ok_or("--measure needs a value")?;
                        measure = match m.as_str() {
                            "bc" | "betweenness" => Measure::Betweenness,
                            "kpath" => Measure::KPath,
                            "harmonic" | "closeness" => Measure::Harmonic,
                            other => return Err(format!("unknown measure {other}")),
                        };
                    }
                    "--eps" => {
                        eps = next_parse(&mut it, "--eps")?;
                        saphyra::params::check_eps(eps).map_err(|e| format!("--eps: {e}"))?;
                    }
                    "--delta" => {
                        delta = next_parse(&mut it, "--delta")?;
                        saphyra::params::check_delta(delta).map_err(|e| format!("--delta: {e}"))?;
                    }
                    "--seed" => seed = next_parse(&mut it, "--seed")?,
                    "--khops" => {
                        khops = next_parse(&mut it, "--khops")?;
                        saphyra::params::check_khops(khops).map_err(|e| format!("--khops: {e}"))?;
                    }
                    other => return Err(format!("rank: unknown flag {other}")),
                }
            }
            let targets = targets.ok_or("rank: need --targets or --random")?;
            Ok(Command::Rank {
                path,
                targets,
                measure,
                eps,
                delta,
                seed,
                khops,
            })
        }
        "gen" => {
            let network = it.next().ok_or("gen: missing network name")?.clone();
            let size = it.next().ok_or("gen: missing size class")?.clone();
            let out = it.next().ok_or("gen: missing output path")?.clone();
            let mut seed = 2022u64;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--seed" => seed = next_parse(&mut it, "--seed")?,
                    other => return Err(format!("gen: unknown flag {other}")),
                }
            }
            Ok(Command::Gen {
                network,
                size,
                out,
                seed,
            })
        }
        "serve" => {
            let addr = it.next().ok_or("serve: missing bind address")?.clone();
            let (mut workers, mut cache) = (0usize, 128usize);
            let defaults = saphyra_service::ServiceConfig::default();
            let mut max_connections = defaults.max_connections;
            let mut pipeline_depth = defaults.pipeline_depth;
            let mut journal_max_bytes = None;
            let mut state_dir = None;
            let mut resnapshot_deltas = defaults.resnapshot_deltas;
            let mut batch_window_ms = defaults.batch_window.as_millis() as u64;
            let mut role = saphyra_service::Role::Standalone;
            let mut shards: Vec<String> = Vec::new();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--workers" => {
                        workers = next_parse(&mut it, "--workers")?;
                        saphyra::params::check_threads(workers)
                            .map_err(|e| format!("--workers: {e}"))?;
                    }
                    "--cache" => cache = next_parse(&mut it, "--cache")?,
                    "--max-connections" => {
                        max_connections = next_parse(&mut it, "--max-connections")?
                    }
                    "--pipeline-depth" => {
                        pipeline_depth = next_parse(&mut it, "--pipeline-depth")?;
                        if pipeline_depth == 0 {
                            return Err("--pipeline-depth must be >= 1".to_string());
                        }
                    }
                    "--journal-max-bytes" => {
                        let n: u64 = next_parse(&mut it, "--journal-max-bytes")?;
                        if n == 0 {
                            return Err("--journal-max-bytes must be >= 1".to_string());
                        }
                        journal_max_bytes = Some(n);
                    }
                    "--state-dir" => {
                        state_dir = Some(it.next().ok_or("--state-dir needs a value")?.clone())
                    }
                    "--resnapshot-deltas" => {
                        resnapshot_deltas = next_parse(&mut it, "--resnapshot-deltas")?;
                        if resnapshot_deltas == 0 {
                            return Err("--resnapshot-deltas must be >= 1".to_string());
                        }
                    }
                    "--batch-window-ms" => {
                        batch_window_ms = next_parse(&mut it, "--batch-window-ms")?;
                    }
                    "--role" => {
                        let v = it.next().ok_or("--role needs a value")?;
                        role = saphyra_service::Role::parse(v).ok_or(format!(
                            "--role: unknown role {v:?}; want standalone|router|shard"
                        ))?;
                    }
                    "--shards" => {
                        let v = it.next().ok_or("--shards needs a value")?;
                        shards = v.split(',').map(|s| s.trim().to_string()).collect();
                    }
                    other => return Err(format!("serve: unknown flag {other}")),
                }
            }
            if role == saphyra_service::Role::Router {
                saphyra::params::check_shard_addrs(&shards, &addr)
                    .map_err(|e| format!("--shards: {e}"))?;
            } else if !shards.is_empty() {
                return Err(format!(
                    "--shards only applies to --role router (role is {})",
                    role.as_str()
                ));
            }
            Ok(Command::Serve {
                addr,
                workers,
                cache,
                max_connections,
                pipeline_depth,
                journal_max_bytes,
                state_dir,
                resnapshot_deltas,
                batch_window_ms,
                role,
                shards,
            })
        }
        "snapshot" => {
            let action = it.next().ok_or("snapshot: missing action")?;
            let cmd = match action.as_str() {
                "save" => {
                    let input = it.next().ok_or("snapshot save: missing edge-list")?.clone();
                    let out = it
                        .next()
                        .ok_or("snapshot save: missing output path")?
                        .clone();
                    let mut name = None;
                    while let Some(flag) = it.next() {
                        match flag.as_str() {
                            "--name" => {
                                name = Some(it.next().ok_or("--name needs a value")?.clone())
                            }
                            other => return Err(format!("snapshot save: unknown flag {other}")),
                        }
                    }
                    SnapshotCmd::Save { input, out, name }
                }
                "load" => SnapshotCmd::Load {
                    path: it.next().ok_or("snapshot load: missing path")?.clone(),
                },
                "verify" => SnapshotCmd::Verify {
                    path: it.next().ok_or("snapshot verify: missing path")?.clone(),
                },
                "replay" => SnapshotCmd::Replay {
                    dir: it
                        .next()
                        .ok_or("snapshot replay: missing state dir")?
                        .clone(),
                },
                other => {
                    return Err(format!(
                        "snapshot: unknown action {other}; expected save|load|verify|replay"
                    ))
                }
            };
            Ok(Command::Snapshot(cmd))
        }
        "query" => {
            let addr = it.next().ok_or("query: missing service address")?.clone();
            let action = it.next().ok_or("query: missing action")?;
            parse_query(addr, action, &mut it)
        }
        other => Err(format!(
            "unknown command {other}; expected info|exact|rank|gen|serve|snapshot|query"
        )),
    }
}

/// Rejects seeds the JSON wire format cannot carry exactly: `Json::Num` is
/// an `f64`, so integers above 2⁵³ would silently round to a *different*
/// seed than requested. The direct (non-service) `rank` path keeps the
/// full u64 range.
fn check_json_seed(seed: u64) -> Result<u64, String> {
    if seed > saphyra_service::json::MAX_SAFE_INT {
        return Err(format!(
            "--seed: {seed} exceeds 2^53, the largest integer the JSON wire format carries exactly"
        ));
    }
    Ok(seed)
}

/// Parses a `query <addr> <action> ...` invocation into the HTTP request
/// it stands for. Validation mirrors the service's own (`saphyra::params`),
/// so garbage fails fast client-side with the same messages.
fn parse_query<'a>(
    addr: String,
    action: &str,
    it: &mut impl Iterator<Item = &'a String>,
) -> Result<Command, String> {
    use saphyra_service::json::Json;
    let query = |method, path: String, body: Option<String>, repeat| {
        Ok(Command::Query {
            addr,
            method,
            path,
            body,
            repeat,
        })
    };
    match action {
        "health" => query("GET", "/healthz".to_string(), None, 1),
        "graphs" => query("GET", "/graphs".to_string(), None, 1),
        "shutdown" => query("POST", "/shutdown".to_string(), None, 1),
        "load" => {
            let (mut name, mut path, mut gen, mut seed) = (None, None, None, None::<u64>);
            let mut split = false;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--name" => name = Some(it.next().ok_or("--name needs a value")?.clone()),
                    "--path" => path = Some(it.next().ok_or("--path needs a value")?.clone()),
                    "--gen" => gen = Some(it.next().ok_or("--gen needs a value")?.clone()),
                    "--seed" => seed = Some(check_json_seed(next_parse(it, "--seed")?)?),
                    "--split" => split = true,
                    other => return Err(format!("load: unknown flag {other}")),
                }
            }
            let name = name.ok_or("load: need --name")?;
            let mut fields = vec![("name".to_string(), Json::from(name))];
            match (path, gen) {
                (Some(p), None) => fields.push(("path".to_string(), Json::from(p))),
                (None, Some(g)) => {
                    let (network, size) = g
                        .split_once(':')
                        .ok_or("--gen: want <network>:<size>, e.g. flickr:tiny")?;
                    // Fail fast on unknown spellings before going on the wire.
                    network.parse::<saphyra_gen::datasets::SimNetwork>()?;
                    size.parse::<saphyra_gen::datasets::SizeClass>()?;
                    fields.push(("network".to_string(), Json::from(network)));
                    fields.push(("size".to_string(), Json::from(size)));
                }
                _ => return Err("load: need exactly one of --path or --gen".to_string()),
            }
            if let Some(s) = seed {
                fields.push(("seed".to_string(), Json::from(s)));
            }
            if split {
                fields.push(("split".to_string(), Json::Bool(true)));
            }
            query(
                "POST",
                "/graphs".to_string(),
                Some(Json::Obj(fields).to_string()),
                1,
            )
        }
        "patch" => {
            let name = it.next().ok_or("patch: missing graph name")?.clone();
            // The name becomes a path segment: reject anything the service
            // would never have accepted as a graph name (and that could
            // otherwise smuggle '/' or '?' into the request line).
            if !saphyra_service::persist::valid_graph_name(&name) {
                return Err(format!(
                    "patch: invalid graph name {name:?} (want 1-64 chars of [A-Za-z0-9._-], \
                     no leading dot)"
                ));
            }
            let (mut insert, mut delete) = (Vec::new(), Vec::new());
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--insert" => insert.push(parse_edge_pair(it, "--insert")?),
                    "--delete" => delete.push(parse_edge_pair(it, "--delete")?),
                    other => return Err(format!("patch: unknown flag {other}")),
                }
            }
            if insert.is_empty() && delete.is_empty() {
                return Err("patch: need at least one --insert u,v or --delete u,v".to_string());
            }
            let edges = |list: &[(NodeId, NodeId)]| {
                Json::Arr(
                    list.iter()
                        .map(|&(u, v)| Json::Arr(vec![Json::from(u), Json::from(v)]))
                        .collect(),
                )
            };
            let mut fields = Vec::new();
            if !insert.is_empty() {
                fields.push(("insert".to_string(), edges(&insert)));
            }
            if !delete.is_empty() {
                fields.push(("delete".to_string(), edges(&delete)));
            }
            query(
                "PATCH",
                format!("/graphs/{name}"),
                Some(Json::Obj(fields).to_string()),
                1,
            )
        }
        "rank" => {
            let mut graph = None;
            let mut targets: Option<Vec<NodeId>> = None;
            let mut measure = "bc".to_string();
            let (mut eps, mut delta, mut seed, mut khops) = (0.01f64, 0.01f64, 2022u64, 5usize);
            let mut repeat = 1usize;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--repeat" => {
                        repeat = next_parse(it, "--repeat")?;
                        if repeat == 0 {
                            return Err("--repeat: must be >= 1".to_string());
                        }
                    }
                    "--graph" => graph = Some(it.next().ok_or("--graph needs a value")?.clone()),
                    "--targets" => {
                        let list = it.next().ok_or("--targets needs a value")?;
                        let ids: Result<Vec<NodeId>, _> =
                            list.split(',').map(|s| s.trim().parse()).collect();
                        targets =
                            Some(ids.map_err(|_| format!("--targets: cannot parse {list:?}"))?);
                    }
                    "--measure" => measure = it.next().ok_or("--measure needs a value")?.clone(),
                    "--eps" => {
                        eps = next_parse(it, "--eps")?;
                        saphyra::params::check_eps(eps).map_err(|e| format!("--eps: {e}"))?;
                    }
                    "--delta" => {
                        delta = next_parse(it, "--delta")?;
                        saphyra::params::check_delta(delta).map_err(|e| format!("--delta: {e}"))?;
                    }
                    "--seed" => seed = check_json_seed(next_parse(it, "--seed")?)?,
                    "--khops" => {
                        khops = next_parse(it, "--khops")?;
                        saphyra::params::check_khops(khops).map_err(|e| format!("--khops: {e}"))?;
                    }
                    other => return Err(format!("rank: unknown flag {other}")),
                }
            }
            let graph = graph.ok_or("rank: need --graph")?;
            let targets = targets.ok_or("rank: need --targets")?;
            let body = Json::Obj(vec![
                ("graph".to_string(), Json::from(graph)),
                ("measure".to_string(), Json::from(measure)),
                (
                    "targets".to_string(),
                    Json::Arr(targets.iter().map(|&t| Json::from(t)).collect()),
                ),
                ("eps".to_string(), Json::Num(eps)),
                ("delta".to_string(), Json::Num(delta)),
                ("seed".to_string(), Json::from(seed)),
                ("khops".to_string(), Json::from(khops)),
            ]);
            query("POST", "/rank".to_string(), Some(body.to_string()), repeat)
        }
        other => Err(format!(
            "query: unknown action {other}; expected health|graphs|load|patch|rank|shutdown"
        )),
    }
}

/// Parses one `--insert`/`--delete` operand of `query patch`: a `u,v`
/// endpoint pair. Self-loops fail fast client-side — no edge delta ever
/// accepts them, so there is no point putting one on the wire.
fn parse_edge_pair<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<(NodeId, NodeId), String> {
    let val = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
    let (u, v) = val
        .split_once(',')
        .ok_or_else(|| format!("{flag}: want u,v (e.g. 3,7), got {val:?}"))?;
    let parse = |s: &str| {
        s.trim()
            .parse::<NodeId>()
            .map_err(|_| format!("{flag}: cannot parse node id {:?}", s.trim()))
    };
    let (u, v) = (parse(u)?, parse(v)?);
    if u == v {
        return Err(format!("{flag}: {u},{v} is a self-loop"));
    }
    Ok((u, v))
}

fn next_parse<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<T, String> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag}: invalid value"))
}

fn load(path: &str) -> Result<Graph, String> {
    io::load_edge_list(path).map_err(|e| format!("cannot load {path}: {e}"))
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Info { path } => {
            let g = load(&path)?;
            let index = BcIndex::new(&g);
            let comps = saphyra_graph::connectivity::Components::compute(&g);
            println!("nodes            {}", g.num_nodes());
            println!("edges            {}", g.num_edges());
            println!("max degree       {}", g.max_degree());
            println!("components       {}", comps.count());
            println!("bi-components    {}", index.bic.num_bicomps);
            println!(
                "cutpoints        {}",
                index.bic.is_cutpoint.iter().filter(|&&c| c).count()
            );
            println!("gamma (Eq. 19)   {:.6}", index.gamma);
            Ok(())
        }
        Command::Exact { path, top, threads } => {
            let g = load(&path)?;
            let bc = saphyra_baselines::exact_betweenness(&g, threads);
            let ranks = saphyra_stats::ranks_by_value(&bc);
            let mut order: Vec<usize> = (0..g.num_nodes()).collect();
            order.sort_by_key(|&v| ranks[v]);
            println!("{:<8} {:<10} betweenness", "rank", "node");
            for &v in order.iter().take(top) {
                println!("{:<8} {:<10} {:.8}", ranks[v], v, bc[v]);
            }
            Ok(())
        }
        Command::Rank {
            path,
            targets,
            measure,
            eps,
            delta,
            seed,
            khops,
        } => {
            let g = load(&path)?;
            let mut rng = StdRng::seed_from_u64(seed);
            let targets = resolve_targets(&g, targets, &mut rng)?;
            let (values, label): (Vec<f64>, &str) = match measure {
                Measure::Betweenness => {
                    let index = BcIndex::new(&g);
                    let est =
                        index.rank_subset(&targets, &SaphyraBcConfig::new(eps, delta), &mut rng);
                    eprintln!(
                        "samples {} (λ̂ {:.3}, VC {})",
                        est.stats.samples, est.stats.lambda_hat, est.stats.vc.vc_subset
                    );
                    (est.bc, "betweenness")
                }
                Measure::KPath => (
                    rank_kpath(&g, &targets, khops, eps, delta, &mut rng).kpc,
                    "k-path",
                ),
                Measure::Harmonic => (
                    rank_harmonic(&g, &targets, eps, delta, &mut rng).hc,
                    "harmonic",
                ),
            };
            let ranks = saphyra_stats::ranks_by_value(&values);
            let mut order: Vec<usize> = (0..targets.len()).collect();
            order.sort_by_key(|&i| ranks[i]);
            println!("{:<8} {:<10} {label}", "rank", "node");
            for &i in &order {
                println!("{:<8} {:<10} {:.8}", ranks[i], targets[i], values[i]);
            }
            Ok(())
        }
        Command::Gen {
            network,
            size,
            out,
            seed,
        } => {
            use saphyra_gen::datasets::{SimNetwork, SizeClass};
            let net: SimNetwork = network.parse()?;
            let size: SizeClass = size.parse()?;
            let g = net.build(size, seed);
            io::save_edge_list(&g, &out).map_err(|e| e.to_string())?;
            println!(
                "wrote {} ({} nodes, {} edges)",
                out,
                g.num_nodes(),
                g.num_edges()
            );
            Ok(())
        }
        Command::Serve {
            addr,
            workers,
            cache,
            max_connections,
            pipeline_depth,
            journal_max_bytes,
            state_dir,
            resnapshot_deltas,
            batch_window_ms,
            role,
            shards,
        } => {
            let cfg = saphyra_service::ServiceConfig {
                workers,
                cache_capacity: cache,
                max_connections,
                pipeline_depth,
                journal_max_bytes,
                state_dir: state_dir.map(std::path::PathBuf::from),
                resnapshot_deltas,
                batch_window: std::time::Duration::from_millis(batch_window_ms),
                role,
                shards,
                ..Default::default()
            };
            let handle = saphyra_service::serve(&addr, cfg)
                .map_err(|e| format!("cannot bind {addr}: {e}"))?;
            let restored = handle.service().snapshots_loaded();
            if restored > 0 {
                println!("restored {restored} graph(s) from snapshots");
            }
            println!("listening on {}", handle.addr());
            handle.join();
            println!("shut down");
            Ok(())
        }
        Command::Snapshot(cmd) => run_snapshot(cmd),
        Command::Query {
            addr,
            method,
            path,
            body,
            repeat,
        } => {
            // All repeats ride one pooled persistent connection.
            let mut client = saphyra_service::Client::new(addr.as_str());
            for _ in 0..repeat {
                let resp = client
                    .request(method, &path, body.as_deref())
                    .map_err(|e| format!("cannot reach {addr}: {e}"))?;
                println!("{}", resp.body);
                if resp.status != 200 {
                    return Err(format!("service returned HTTP {}", resp.status));
                }
            }
            Ok(())
        }
    }
}

/// Offline snapshot operations — the same [`saphyra_service::persist`]
/// code paths `serve --state-dir` uses, runnable without a server.
fn run_snapshot(cmd: SnapshotCmd) -> Result<(), String> {
    use saphyra_service::persist;
    use std::path::Path;
    use std::time::Instant;
    match cmd {
        SnapshotCmd::Save { input, out, name } => {
            let g = load(&input)?;
            // Default the registry name to the snapshot's file stem, the
            // name `serve --state-dir` would restore it under.
            let stem = Path::new(&out)
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| format!("cannot derive a graph name from {out:?}; pass --name"))?
                .to_string();
            let name = name.unwrap_or_else(|| stem.clone());
            // A snapshot only restores if its name is valid AND matches
            // its file stem — enforce both here, the same way the HTTP
            // load path does, instead of writing a file `serve
            // --state-dir` would silently skip.
            if !saphyra_service::persist::valid_graph_name(&name) {
                return Err(format!(
                    "snapshot save: invalid graph name {name:?} (want 1-64 chars of \
                     [A-Za-z0-9._-], no leading dot)"
                ));
            }
            if name != stem {
                return Err(format!(
                    "snapshot save: graph name {name:?} does not match the output file stem \
                     {stem:?} — `serve --state-dir` would skip this snapshot at boot; \
                     write it as {name}.snap or drop --name"
                ));
            }
            let t0 = Instant::now();
            let dec = saphyra::bc::BcDecomposition::compute(&g);
            let dt = t0.elapsed();
            persist::save_snapshot(Path::new(&out), &name, &g, &dec, 0)
                .map_err(|e| e.to_string())?;
            println!(
                "wrote {out} (graph {name:?}: {} nodes, {} edges, {} bicomps; decomposed in {dt:.1?})",
                g.num_nodes(),
                g.num_edges(),
                dec.bic.num_bicomps
            );
            Ok(())
        }
        SnapshotCmd::Load { path } => {
            let t0 = Instant::now();
            let snap = persist::load_snapshot(Path::new(&path)).map_err(|e| e.to_string())?;
            let dec = match snap.dec {
                Ok(dec) => dec,
                Err(reason) => {
                    // Same degradation as a `serve --state-dir` boot.
                    eprintln!("warning: decomposition unusable ({reason}); recomputing");
                    saphyra::bc::BcDecomposition::compute(&snap.graph)
                }
            };
            println!("graph            {}", snap.name);
            println!("nodes            {}", snap.graph.num_nodes());
            println!("edges            {}", snap.graph.num_edges());
            println!("bi-components    {}", dec.bic.num_bicomps);
            println!("gamma (Eq. 19)   {:.6}", dec.gamma);
            println!("loaded in        {:.1?}", t0.elapsed());
            Ok(())
        }
        SnapshotCmd::Verify { path } => {
            // Strict: a snapshot whose decomposition section is damaged
            // still *boots* (with recomputation), but it does not verify.
            // The report names the version the FILE was written with (not
            // this build's writer version) and the per-section byte
            // budget, so an operator can see at a glance where a
            // snapshot's bytes go.
            let info = persist::inspect_snapshot(Path::new(&path)).map_err(|e| e.to_string())?;
            if !info.dec_ok {
                return Err("decomposition section unusable: a boot would recompute".to_string());
            }
            println!(
                "ok: {path} (graph {:?}, container v{}, delta seq {})",
                info.name, info.version, info.delta_seq
            );
            println!("total bytes      {}", info.total_bytes);
            println!("graph section    {}", info.graph_bytes);
            println!(
                "warm section     {} ({} entries)",
                info.warm_bytes, info.warm_entries
            );
            println!("dec section      {}", info.dec_bytes);
            Ok(())
        }
        SnapshotCmd::Replay { dir } => {
            let dir = Path::new(&dir);
            // A journal-less service: replay must not append to the very
            // journal it is reading.
            let service = saphyra_service::Service::new(saphyra_service::ServiceConfig {
                workers: 1,
                ..Default::default()
            });
            let (restored, recomputed) = service.restore_from_dir(dir);
            if restored + recomputed == 0 {
                return Err(format!("no usable snapshots in {}", dir.display()));
            }
            // Journaled edge deltas first — exactly what a `serve
            // --state-dir` boot does — so the /rank records that follow
            // replay against the graphs they were recorded against.
            let patched = service.replay_patch_records(dir);
            if patched > 0 {
                println!("applied {patched} journaled patch delta(s)");
            }
            // Rotated generation first, then the current journal —
            // append order across the whole surviving history.
            let stats = persist::replay_journals(dir, &service)
                .map_err(|e| format!("cannot replay journal of {}: {e}", dir.display()))?;
            println!(
                "replayed {} of {} journal line(s) against {} snapshot graph(s); {} skipped, {} status mismatch(es)",
                stats.replayed,
                stats.lines,
                restored + recomputed,
                stats.skipped,
                stats.status_mismatches
            );
            if stats.status_mismatches > 0 {
                return Err(format!(
                    "{} replayed request(s) returned a different status than recorded",
                    stats.status_mismatches
                ));
            }
            Ok(())
        }
    }
}

fn resolve_targets(g: &Graph, spec: TargetSpec, rng: &mut StdRng) -> Result<Vec<NodeId>, String> {
    match spec {
        TargetSpec::List(ids) => {
            saphyra::params::check_targets(&ids, g.num_nodes())?;
            Ok(ids)
        }
        TargetSpec::Random(k) => {
            if k > g.num_nodes() {
                return Err(format!("--random {k} exceeds n = {}", g.num_nodes()));
            }
            let mut set = std::collections::BTreeSet::new();
            while set.len() < k {
                set.insert(rng.gen_range(0..g.num_nodes() as NodeId));
            }
            Ok(set.into_iter().collect())
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: saphyra-cli <info|exact|rank|gen|serve|query> ... (see module docs / README)"
            );
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_info() {
        let c = parse_args(&sv(&["info", "g.txt"])).unwrap();
        assert_eq!(
            c,
            Command::Info {
                path: "g.txt".into()
            }
        );
    }

    #[test]
    fn parses_rank_with_flags() {
        let c = parse_args(&sv(&[
            "rank",
            "g.txt",
            "--targets",
            "1,2,3",
            "--measure",
            "harmonic",
            "--eps",
            "0.05",
            "--seed",
            "9",
        ]))
        .unwrap();
        match c {
            Command::Rank {
                targets: TargetSpec::List(ids),
                measure,
                eps,
                seed,
                ..
            } => {
                assert_eq!(ids, vec![1, 2, 3]);
                assert_eq!(measure, Measure::Harmonic);
                assert_eq!(eps, 0.05);
                assert_eq!(seed, 9);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_random_targets() {
        let c = parse_args(&sv(&["rank", "g.txt", "--random", "50"])).unwrap();
        assert!(matches!(
            c,
            Command::Rank {
                targets: TargetSpec::Random(50),
                ..
            }
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_args(&sv(&[])).is_err());
        assert!(parse_args(&sv(&["frobnicate"])).is_err());
        assert!(parse_args(&sv(&["rank", "g.txt"])).is_err()); // no targets
        assert!(parse_args(&sv(&["rank", "g.txt", "--targets", "1,x"])).is_err());
        assert!(parse_args(&sv(&[
            "rank",
            "g.txt",
            "--random",
            "5",
            "--measure",
            "pagerank"
        ]))
        .is_err());
        assert!(parse_args(&sv(&["gen", "flickr", "tiny"])).is_err()); // no out
    }

    #[test]
    fn rejects_out_of_domain_accuracy_params() {
        for (flag, bad) in [
            ("--eps", "0"),
            ("--eps", "1"),
            ("--eps", "NaN"),
            ("--eps", "inf"),
            ("--eps", "-0.5"),
            ("--delta", "0"),
            ("--delta", "1.5"),
            ("--delta", "NaN"),
            ("--khops", "1"),
            ("--khops", "0"),
        ] {
            let r = parse_args(&sv(&["rank", "g.txt", "--targets", "1", flag, bad]));
            assert!(r.is_err(), "{flag} {bad} accepted: {r:?}");
        }
        assert!(parse_args(&sv(&["rank", "g.txt", "--random", "0"])).is_err());
        assert!(parse_args(&sv(&["exact", "g.txt", "--threads", "0"])).is_err());
        // Omitting --threads keeps the auto default.
        assert!(parse_args(&sv(&["exact", "g.txt"])).is_ok());
        // Valid boundary-adjacent values still parse.
        assert!(parse_args(&sv(&[
            "rank",
            "g.txt",
            "--targets",
            "1",
            "--eps",
            "0.999",
            "--delta",
            "0.001"
        ]))
        .is_ok());
    }

    #[test]
    fn parses_serve_and_query() {
        let c = parse_args(&sv(&[
            "serve",
            "127.0.0.1:0",
            "--workers",
            "2",
            "--cache",
            "9",
        ]))
        .unwrap();
        let defaults = saphyra_service::ServiceConfig::default();
        assert_eq!(
            c,
            Command::Serve {
                addr: "127.0.0.1:0".into(),
                workers: 2,
                cache: 9,
                max_connections: defaults.max_connections,
                pipeline_depth: defaults.pipeline_depth,
                journal_max_bytes: None,
                state_dir: None,
                resnapshot_deltas: defaults.resnapshot_deltas,
                batch_window_ms: defaults.batch_window.as_millis() as u64,
                role: saphyra_service::Role::Standalone,
                shards: Vec::new(),
            }
        );
        let c = parse_args(&sv(&["serve", "127.0.0.1:0", "--batch-window-ms", "250"])).unwrap();
        assert!(matches!(
            c,
            Command::Serve {
                batch_window_ms: 250,
                ..
            }
        ));
        let c = parse_args(&sv(&["serve", "127.0.0.1:0", "--state-dir", "/tmp/sd"])).unwrap();
        assert!(matches!(
            c,
            Command::Serve { state_dir: Some(d), .. } if d == "/tmp/sd"
        ));
        let c = parse_args(&sv(&[
            "serve",
            "127.0.0.1:0",
            "--max-connections",
            "77",
            "--pipeline-depth",
            "4",
            "--journal-max-bytes",
            "4096",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::Serve {
                max_connections: 77,
                pipeline_depth: 4,
                journal_max_bytes: Some(4096),
                ..
            }
        ));
        assert!(parse_args(&sv(&["serve", "127.0.0.1:0", "--workers", "0"])).is_err());
        assert!(parse_args(&sv(&["serve", "127.0.0.1:0", "--state-dir"])).is_err());
        assert!(parse_args(&sv(&["serve", "127.0.0.1:0", "--pipeline-depth", "0"])).is_err());
        assert!(parse_args(&sv(&["serve", "127.0.0.1:0", "--journal-max-bytes", "0"])).is_err());
        let c = parse_args(&sv(&["serve", "127.0.0.1:0", "--resnapshot-deltas", "4"])).unwrap();
        assert!(matches!(
            c,
            Command::Serve {
                resnapshot_deltas: 4,
                ..
            }
        ));
        assert!(parse_args(&sv(&["serve", "127.0.0.1:0", "--resnapshot-deltas", "0"])).is_err());

        // Sharded roles.
        let c = parse_args(&sv(&[
            "serve",
            "127.0.0.1:7000",
            "--role",
            "router",
            "--shards",
            "127.0.0.1:7001,127.0.0.1:7002",
        ]))
        .unwrap();
        assert!(matches!(
            c,
            Command::Serve { role: saphyra_service::Role::Router, ref shards, .. }
                if shards == &["127.0.0.1:7001".to_string(), "127.0.0.1:7002".to_string()]
        ));
        let c = parse_args(&sv(&["serve", "127.0.0.1:0", "--role", "shard"])).unwrap();
        assert!(matches!(
            c,
            Command::Serve {
                role: saphyra_service::Role::Shard,
                ..
            }
        ));
        // Bad role spelling.
        assert!(parse_args(&sv(&["serve", "127.0.0.1:0", "--role", "primary"])).is_err());
        // A router must name shards; the list must be well-formed.
        assert!(parse_args(&sv(&["serve", "127.0.0.1:0", "--role", "router"])).is_err());
        assert!(parse_args(&sv(&[
            "serve",
            "127.0.0.1:7000",
            "--role",
            "router",
            "--shards",
            "127.0.0.1:7001,127.0.0.1:7001",
        ]))
        .is_err());
        // A router fanning out to itself would deadlock.
        assert!(parse_args(&sv(&[
            "serve",
            "127.0.0.1:7000",
            "--role",
            "router",
            "--shards",
            "127.0.0.1:7000",
        ]))
        .is_err());
        // Shards on non-router roles are rejected.
        assert!(parse_args(&sv(
            &["serve", "127.0.0.1:0", "--shards", "127.0.0.1:7001",]
        ))
        .is_err());

        let c = parse_args(&sv(&["query", "h:1", "health"])).unwrap();
        match c {
            Command::Query {
                method,
                path,
                body: None,
                ..
            } => {
                assert_eq!(method, "GET");
                assert_eq!(path, "/healthz");
            }
            other => panic!("wrong parse: {other:?}"),
        }

        let c = parse_args(&sv(&[
            "query",
            "h:1",
            "load",
            "--name",
            "g",
            "--gen",
            "flickr:tiny",
            "--seed",
            "5",
        ]))
        .unwrap();
        match c {
            Command::Query {
                method, path, body, ..
            } => {
                assert_eq!(method, "POST");
                assert_eq!(path, "/graphs");
                assert_eq!(
                    body.unwrap(),
                    r#"{"name":"g","network":"flickr","size":"tiny","seed":5}"#
                );
            }
            other => panic!("wrong parse: {other:?}"),
        }

        // --split rides along in the load body (routers split the graph
        // across their shards; other roles reject the flag server-side).
        let c = parse_args(&sv(&[
            "query",
            "h:1",
            "load",
            "--name",
            "g",
            "--gen",
            "flickr:tiny",
            "--split",
        ]))
        .unwrap();
        match c {
            Command::Query { body, .. } => assert_eq!(
                body.unwrap(),
                r#"{"name":"g","network":"flickr","size":"tiny","split":true}"#
            ),
            other => panic!("wrong parse: {other:?}"),
        }

        let c = parse_args(&sv(&[
            "query",
            "h:1",
            "rank",
            "--graph",
            "g",
            "--targets",
            "1,2",
            "--eps",
            "0.1",
        ]))
        .unwrap();
        match c {
            Command::Query { path, body, .. } => {
                assert_eq!(path, "/rank");
                let body = body.unwrap();
                assert!(body.contains(r#""graph":"g""#), "{body}");
                assert!(body.contains(r#""targets":[1,2]"#), "{body}");
                assert!(body.contains(r#""eps":0.1"#), "{body}");
            }
            other => panic!("wrong parse: {other:?}"),
        }

        let c = parse_args(&sv(&[
            "query",
            "h:1",
            "rank",
            "--graph",
            "g",
            "--targets",
            "1",
            "--repeat",
            "3",
        ]))
        .unwrap();
        assert!(matches!(c, Command::Query { repeat: 3, .. }));
        assert!(parse_args(&sv(&[
            "query",
            "h:1",
            "rank",
            "--graph",
            "g",
            "--targets",
            "1",
            "--repeat",
            "0",
        ]))
        .is_err());

        // Same validation as the direct rank path.
        assert!(parse_args(&sv(&[
            "query",
            "h:1",
            "rank",
            "--graph",
            "g",
            "--targets",
            "1",
            "--eps",
            "0"
        ]))
        .is_err());
        assert!(parse_args(&sv(&["query", "h:1", "load", "--name", "g"])).is_err());
        // Seeds above 2^53 cannot ride the JSON wire format exactly.
        assert!(parse_args(&sv(&[
            "query",
            "h:1",
            "rank",
            "--graph",
            "g",
            "--targets",
            "1",
            "--seed",
            "9007199254740993"
        ]))
        .is_err());
        assert!(parse_args(&sv(&[
            "query",
            "h:1",
            "load",
            "--name",
            "g",
            "--gen",
            "flickr:tiny",
            "--seed",
            "18446744073709551615"
        ]))
        .is_err());
        assert!(parse_args(&sv(&[
            "query",
            "h:1",
            "load",
            "--name",
            "g",
            "--gen",
            "bogus:tiny"
        ]))
        .is_err());
        assert!(parse_args(&sv(&["query", "h:1", "frobnicate"])).is_err());
    }

    #[test]
    fn parses_query_patch() {
        let c = parse_args(&sv(&[
            "query", "h:1", "patch", "g", "--insert", "1,2", "--insert", "3,4", "--delete", "0,5",
        ]))
        .unwrap();
        match c {
            Command::Query {
                method, path, body, ..
            } => {
                assert_eq!(method, "PATCH");
                assert_eq!(path, "/graphs/g");
                assert_eq!(
                    body.unwrap(),
                    r#"{"insert":[[1,2],[3,4]],"delete":[[0,5]]}"#
                );
            }
            other => panic!("wrong parse: {other:?}"),
        }
        // Insert-only and delete-only bodies omit the empty list.
        let c = parse_args(&sv(&["query", "h:1", "patch", "g", "--delete", "7,9"])).unwrap();
        match c {
            Command::Query { body, .. } => assert_eq!(body.unwrap(), r#"{"delete":[[7,9]]}"#),
            other => panic!("wrong parse: {other:?}"),
        }
        // Garbage fails client-side, before anything goes on the wire.
        for args in [
            vec!["query", "h:1", "patch"],                             // no name
            vec!["query", "h:1", "patch", "g"],                        // empty delta
            vec!["query", "h:1", "patch", "g", "--insert"],            // no value
            vec!["query", "h:1", "patch", "g", "--insert", "1"],       // not a pair
            vec!["query", "h:1", "patch", "g", "--insert", "1,2,3"],   // too many
            vec!["query", "h:1", "patch", "g", "--insert", "a,b"],     // non-numeric
            vec!["query", "h:1", "patch", "g", "--insert", "1.5,2"],   // fractional
            vec!["query", "h:1", "patch", "g", "--insert", "4,4"],     // self-loop
            vec!["query", "h:1", "patch", "g", "--frobnicate", "1,2"], // unknown flag
            vec!["query", "h:1", "patch", "a/b", "--insert", "1,2"],   // path smuggling
            vec!["query", "h:1", "patch", ".g", "--insert", "1,2"],    // invalid name
        ] {
            assert!(parse_args(&sv(&args)).is_err(), "{args:?} accepted");
        }
    }

    #[test]
    fn end_to_end_serve_query_round_trip() {
        // Start the service in-process on an ephemeral port, then drive it
        // exclusively through the `query` command path.
        let handle = saphyra_service::serve(
            "127.0.0.1:0",
            saphyra_service::ServiceConfig {
                workers: 2,
                cache_capacity: 8,
                ..Default::default()
            },
        )
        .unwrap();
        let addr = handle.addr().to_string();

        let q = |args: &[&str]| -> Result<(), String> {
            let mut argv = vec!["query", addr.as_str()];
            argv.extend_from_slice(args);
            run(parse_args(&sv(&argv))?)
        };
        q(&["health"]).unwrap();
        q(&["load", "--name", "g", "--gen", "flickr:tiny", "--seed", "5"]).unwrap();
        q(&["graphs"]).unwrap();
        q(&[
            "rank",
            "--graph",
            "g",
            "--targets",
            "1,2,3",
            "--eps",
            "0.2",
            "--delta",
            "0.1",
            "--repeat",
            "3",
        ])
        .unwrap();
        // Patch the loaded graph through the same client path, then rank
        // again on the patched graph.
        q(&["patch", "g", "--insert", "0,7", "--delete", "0,7"]).unwrap_err(); // conflict: 400
        q(&["patch", "g", "--insert", "0,7", "--insert", "3,11"]).unwrap();
        q(&["rank", "--graph", "g", "--targets", "1,2,3", "--eps", "0.2"]).unwrap();
        // Unknown graph surfaces as a non-200 error (patch and rank alike).
        assert!(q(&["rank", "--graph", "nope", "--targets", "1"]).is_err());
        assert!(q(&["patch", "nope", "--insert", "1,2"]).is_err());
        q(&["shutdown"]).unwrap();
        handle.join();
    }

    #[test]
    fn parses_snapshot_actions() {
        let c = parse_args(&sv(&["snapshot", "save", "g.txt", "g.snap", "--name", "g"])).unwrap();
        assert_eq!(
            c,
            Command::Snapshot(SnapshotCmd::Save {
                input: "g.txt".into(),
                out: "g.snap".into(),
                name: Some("g".into())
            })
        );
        assert_eq!(
            parse_args(&sv(&["snapshot", "verify", "g.snap"])).unwrap(),
            Command::Snapshot(SnapshotCmd::Verify {
                path: "g.snap".into()
            })
        );
        assert_eq!(
            parse_args(&sv(&["snapshot", "replay", "state"])).unwrap(),
            Command::Snapshot(SnapshotCmd::Replay {
                dir: "state".into()
            })
        );
        assert!(parse_args(&sv(&["snapshot"])).is_err());
        assert!(parse_args(&sv(&["snapshot", "frobnicate"])).is_err());
        assert!(parse_args(&sv(&["snapshot", "save", "g.txt"])).is_err());
    }

    #[test]
    fn snapshot_save_load_verify_round_trip() {
        let dir = std::env::temp_dir().join(format!("saphyra_cli_snap_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let edges = dir.join("grid.txt");
        saphyra_graph::io::save_edge_list(&saphyra_graph::fixtures::grid_graph(4, 4), &edges)
            .unwrap();
        let snap = dir.join("grid.snap");
        let s = |args: &[&str]| run(parse_args(&sv(args)).unwrap());
        s(&[
            "snapshot",
            "save",
            edges.to_str().unwrap(),
            snap.to_str().unwrap(),
        ])
        .unwrap();
        s(&["snapshot", "verify", snap.to_str().unwrap()]).unwrap();
        s(&["snapshot", "load", snap.to_str().unwrap()]).unwrap();
        // Names that could never restore are rejected up front: a
        // dot-prefixed stem (the boot scan skips dotfiles) and a --name
        // that disagrees with the output file stem.
        let hidden = dir.join(".hidden.snap");
        assert!(s(&[
            "snapshot",
            "save",
            edges.to_str().unwrap(),
            hidden.to_str().unwrap()
        ])
        .is_err());
        assert!(!hidden.exists());
        assert!(s(&[
            "snapshot",
            "save",
            edges.to_str().unwrap(),
            snap.to_str().unwrap(),
            "--name",
            "other"
        ])
        .is_err());
        // A corrupted file fails verify with a checksum error.
        let mut bytes = std::fs::read(&snap).unwrap();
        bytes[40] ^= 0xFF;
        std::fs::write(&snap, bytes).unwrap();
        assert!(s(&["snapshot", "verify", snap.to_str().unwrap()]).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn end_to_end_rank_on_temp_graph() {
        let g = saphyra_graph::fixtures::grid_graph(5, 5);
        let dir = std::env::temp_dir().join("saphyra_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.txt");
        saphyra_graph::io::save_edge_list(&g, &path).unwrap();
        let cmd = parse_args(&sv(&[
            "rank",
            path.to_str().unwrap(),
            "--targets",
            "6,12,18",
            "--eps",
            "0.1",
        ]))
        .unwrap();
        run(cmd).unwrap();
        let cmd = parse_args(&sv(&["info", path.to_str().unwrap()])).unwrap();
        run(cmd).unwrap();
        std::fs::remove_file(&path).ok();
    }
}
