//! `saphyra-cli` — rank nodes of an edge-list graph from the command line.
//!
//! ```text
//! saphyra-cli info  <edge-list>
//! saphyra-cli exact <edge-list> [--top K] [--threads N]
//! saphyra-cli rank  <edge-list> --targets 1,2,3 [--measure bc|kpath|harmonic]
//!                   [--eps 0.01] [--delta 0.01] [--seed 7] [--khops 5]
//! saphyra-cli rank  <edge-list> --random 100 [...]
//! saphyra-cli gen   <flickr|livejournal|usa-road|orkut> <tiny|small|full> <out-file>
//! ```

use std::process::ExitCode;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use saphyra::bc::{BcIndex, SaphyraBcConfig};
use saphyra::closeness::rank_harmonic;
use saphyra::kpath::rank_kpath;
use saphyra_graph::{io, Graph, NodeId};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
enum Command {
    Info {
        path: String,
    },
    Exact {
        path: String,
        top: usize,
        threads: usize,
    },
    Rank {
        path: String,
        targets: TargetSpec,
        measure: Measure,
        eps: f64,
        delta: f64,
        seed: u64,
        khops: usize,
    },
    Gen {
        network: String,
        size: String,
        out: String,
        seed: u64,
    },
}

#[derive(Debug, Clone, PartialEq)]
enum TargetSpec {
    List(Vec<NodeId>),
    Random(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Measure {
    Betweenness,
    KPath,
    Harmonic,
}

fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = it.next().ok_or("missing command (info|exact|rank|gen)")?;
    match cmd.as_str() {
        "info" => {
            let path = it.next().ok_or("info: missing edge-list path")?.clone();
            Ok(Command::Info { path })
        }
        "exact" => {
            let path = it.next().ok_or("exact: missing edge-list path")?.clone();
            let (mut top, mut threads) = (10usize, 0usize);
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--top" => top = next_parse(&mut it, "--top")?,
                    "--threads" => threads = next_parse(&mut it, "--threads")?,
                    other => return Err(format!("exact: unknown flag {other}")),
                }
            }
            Ok(Command::Exact { path, top, threads })
        }
        "rank" => {
            let path = it.next().ok_or("rank: missing edge-list path")?.clone();
            let mut targets = None;
            let mut measure = Measure::Betweenness;
            let (mut eps, mut delta, mut seed, mut khops) = (0.01f64, 0.01f64, 2022u64, 5usize);
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--targets" => {
                        let list = it.next().ok_or("--targets needs a value")?;
                        let ids: Result<Vec<NodeId>, _> =
                            list.split(',').map(|s| s.trim().parse()).collect();
                        targets = Some(TargetSpec::List(
                            ids.map_err(|_| format!("--targets: cannot parse {list:?}"))?,
                        ));
                    }
                    "--random" => {
                        targets = Some(TargetSpec::Random(next_parse(&mut it, "--random")?))
                    }
                    "--measure" => {
                        let m = it.next().ok_or("--measure needs a value")?;
                        measure = match m.as_str() {
                            "bc" | "betweenness" => Measure::Betweenness,
                            "kpath" => Measure::KPath,
                            "harmonic" | "closeness" => Measure::Harmonic,
                            other => return Err(format!("unknown measure {other}")),
                        };
                    }
                    "--eps" => eps = next_parse(&mut it, "--eps")?,
                    "--delta" => delta = next_parse(&mut it, "--delta")?,
                    "--seed" => seed = next_parse(&mut it, "--seed")?,
                    "--khops" => khops = next_parse(&mut it, "--khops")?,
                    other => return Err(format!("rank: unknown flag {other}")),
                }
            }
            let targets = targets.ok_or("rank: need --targets or --random")?;
            Ok(Command::Rank {
                path,
                targets,
                measure,
                eps,
                delta,
                seed,
                khops,
            })
        }
        "gen" => {
            let network = it.next().ok_or("gen: missing network name")?.clone();
            let size = it.next().ok_or("gen: missing size class")?.clone();
            let out = it.next().ok_or("gen: missing output path")?.clone();
            let mut seed = 2022u64;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--seed" => seed = next_parse(&mut it, "--seed")?,
                    other => return Err(format!("gen: unknown flag {other}")),
                }
            }
            Ok(Command::Gen {
                network,
                size,
                out,
                seed,
            })
        }
        other => Err(format!(
            "unknown command {other}; expected info|exact|rank|gen"
        )),
    }
}

fn next_parse<'a, T: std::str::FromStr>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<T, String> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse()
        .map_err(|_| format!("{flag}: invalid value"))
}

fn load(path: &str) -> Result<Graph, String> {
    io::load_edge_list(path).map_err(|e| format!("cannot load {path}: {e}"))
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Info { path } => {
            let g = load(&path)?;
            let index = BcIndex::new(&g);
            let comps = saphyra_graph::connectivity::Components::compute(&g);
            println!("nodes            {}", g.num_nodes());
            println!("edges            {}", g.num_edges());
            println!("max degree       {}", g.max_degree());
            println!("components       {}", comps.count());
            println!("bi-components    {}", index.bic.num_bicomps);
            println!(
                "cutpoints        {}",
                index.bic.is_cutpoint.iter().filter(|&&c| c).count()
            );
            println!("gamma (Eq. 19)   {:.6}", index.gamma);
            Ok(())
        }
        Command::Exact { path, top, threads } => {
            let g = load(&path)?;
            let bc = saphyra_baselines::exact_betweenness(&g, threads);
            let ranks = saphyra_stats::ranks_by_value(&bc);
            let mut order: Vec<usize> = (0..g.num_nodes()).collect();
            order.sort_by_key(|&v| ranks[v]);
            println!("{:<8} {:<10} betweenness", "rank", "node");
            for &v in order.iter().take(top) {
                println!("{:<8} {:<10} {:.8}", ranks[v], v, bc[v]);
            }
            Ok(())
        }
        Command::Rank {
            path,
            targets,
            measure,
            eps,
            delta,
            seed,
            khops,
        } => {
            let g = load(&path)?;
            let mut rng = StdRng::seed_from_u64(seed);
            let targets = resolve_targets(&g, targets, &mut rng)?;
            let (values, label): (Vec<f64>, &str) = match measure {
                Measure::Betweenness => {
                    let index = BcIndex::new(&g);
                    let est =
                        index.rank_subset(&targets, &SaphyraBcConfig::new(eps, delta), &mut rng);
                    eprintln!(
                        "samples {} (λ̂ {:.3}, VC {})",
                        est.stats.samples, est.stats.lambda_hat, est.stats.vc.vc_subset
                    );
                    (est.bc, "betweenness")
                }
                Measure::KPath => (
                    rank_kpath(&g, &targets, khops, eps, delta, &mut rng).kpc,
                    "k-path",
                ),
                Measure::Harmonic => (
                    rank_harmonic(&g, &targets, eps, delta, &mut rng).hc,
                    "harmonic",
                ),
            };
            let ranks = saphyra_stats::ranks_by_value(&values);
            let mut order: Vec<usize> = (0..targets.len()).collect();
            order.sort_by_key(|&i| ranks[i]);
            println!("{:<8} {:<10} {label}", "rank", "node");
            for &i in &order {
                println!("{:<8} {:<10} {:.8}", ranks[i], targets[i], values[i]);
            }
            Ok(())
        }
        Command::Gen {
            network,
            size,
            out,
            seed,
        } => {
            use saphyra_gen::datasets::{SimNetwork, SizeClass};
            let net = match network.as_str() {
                "flickr" => SimNetwork::Flickr,
                "livejournal" => SimNetwork::LiveJournal,
                "usa-road" => SimNetwork::UsaRoad,
                "orkut" => SimNetwork::Orkut,
                other => return Err(format!("unknown network {other}")),
            };
            let size = match size.as_str() {
                "tiny" => SizeClass::Tiny,
                "small" => SizeClass::Small,
                "full" => SizeClass::Full,
                other => return Err(format!("unknown size class {other}")),
            };
            let g = net.build(size, seed);
            io::save_edge_list(&g, &out).map_err(|e| e.to_string())?;
            println!(
                "wrote {} ({} nodes, {} edges)",
                out,
                g.num_nodes(),
                g.num_edges()
            );
            Ok(())
        }
    }
}

fn resolve_targets(g: &Graph, spec: TargetSpec, rng: &mut StdRng) -> Result<Vec<NodeId>, String> {
    match spec {
        TargetSpec::List(ids) => {
            for &v in &ids {
                if v as usize >= g.num_nodes() {
                    return Err(format!("target {v} out of range (n = {})", g.num_nodes()));
                }
            }
            Ok(ids)
        }
        TargetSpec::Random(k) => {
            if k > g.num_nodes() {
                return Err(format!("--random {k} exceeds n = {}", g.num_nodes()));
            }
            let mut set = std::collections::BTreeSet::new();
            while set.len() < k {
                set.insert(rng.gen_range(0..g.num_nodes() as NodeId));
            }
            Ok(set.into_iter().collect())
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args).and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: saphyra-cli <info|exact|rank|gen> ... (see module docs / README)");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_info() {
        let c = parse_args(&sv(&["info", "g.txt"])).unwrap();
        assert_eq!(
            c,
            Command::Info {
                path: "g.txt".into()
            }
        );
    }

    #[test]
    fn parses_rank_with_flags() {
        let c = parse_args(&sv(&[
            "rank",
            "g.txt",
            "--targets",
            "1,2,3",
            "--measure",
            "harmonic",
            "--eps",
            "0.05",
            "--seed",
            "9",
        ]))
        .unwrap();
        match c {
            Command::Rank {
                targets: TargetSpec::List(ids),
                measure,
                eps,
                seed,
                ..
            } => {
                assert_eq!(ids, vec![1, 2, 3]);
                assert_eq!(measure, Measure::Harmonic);
                assert_eq!(eps, 0.05);
                assert_eq!(seed, 9);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn parses_random_targets() {
        let c = parse_args(&sv(&["rank", "g.txt", "--random", "50"])).unwrap();
        assert!(matches!(
            c,
            Command::Rank {
                targets: TargetSpec::Random(50),
                ..
            }
        ));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_args(&sv(&[])).is_err());
        assert!(parse_args(&sv(&["frobnicate"])).is_err());
        assert!(parse_args(&sv(&["rank", "g.txt"])).is_err()); // no targets
        assert!(parse_args(&sv(&["rank", "g.txt", "--targets", "1,x"])).is_err());
        assert!(parse_args(&sv(&[
            "rank",
            "g.txt",
            "--random",
            "5",
            "--measure",
            "pagerank"
        ]))
        .is_err());
        assert!(parse_args(&sv(&["gen", "flickr", "tiny"])).is_err()); // no out
    }

    #[test]
    fn end_to_end_rank_on_temp_graph() {
        let g = saphyra_graph::fixtures::grid_graph(5, 5);
        let dir = std::env::temp_dir().join("saphyra_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("grid.txt");
        saphyra_graph::io::save_edge_list(&g, &path).unwrap();
        let cmd = parse_args(&sv(&[
            "rank",
            path.to_str().unwrap(),
            "--targets",
            "6,12,18",
            "--eps",
            "0.1",
        ]))
        .unwrap();
        run(cmd).unwrap();
        let cmd = parse_args(&sv(&["info", path.to_str().unwrap()])).unwrap();
        run(cmd).unwrap();
        std::fs::remove_file(&path).ok();
    }
}
