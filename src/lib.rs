//! # saphyra-repro
//!
//! Umbrella package of the SaPHyRa reproduction (ICDE 2022). It hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`), and re-exports the workspace crates for convenience:
//!
//! * [`saphyra`] — the framework and SaPHyRa_bc;
//! * [`saphyra_graph`] — the graph substrate;
//! * [`saphyra_gen`] — simulated networks;
//! * [`saphyra_stats`] — bounds and rank metrics;
//! * [`saphyra_baselines`] — RK / ABRA / KADABRA / exact Brandes;
//! * [`saphyra_service`] — the long-lived HTTP JSON ranking service
//!   (`saphyra-cli serve` / `saphyra-cli query`).
//!
//! Start with `cargo run --release --example quickstart`.

pub use saphyra;
pub use saphyra_baselines;
pub use saphyra_gen;
pub use saphyra_graph;
pub use saphyra_service;
pub use saphyra_stats;
